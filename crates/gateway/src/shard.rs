//! Sharded (multi-pair) gateway mode.
//!
//! A [`ShardedGateway`] fronts N cooperative pairs behind ONE client
//! protocol endpoint: an [`fc_ring::Ring`] maps each logical block to a
//! pair, the session scheduler splits batched write runs at shard
//! boundaries ([`crate::batch::coalesce_sharded`]), reads and trims are
//! routed per block segment, and `Flush` fans out to every pair.
//!
//! ## Counter-sum identity
//!
//! Every page-granular gateway counter partitions exactly over shards:
//! for each of `read_pages`, `read_hits`, `write_pages`,
//! `coalesced_pages`, `runs`, `trim_pages`, and `flushed_pages`,
//!
//! ```text
//! Σ_i gateway.shard.{i}.<name>  ==  gateway.<name>
//! ```
//!
//! The identity is exact (not approximate) because both sides are
//! incremented on the same code path, per routed segment — asserted by
//! [`ShardStatsSum::matches`] in the e2e suite. Request-granular counters
//! (`requests`, `admitted`, `writes`, …) deliberately have no per-shard
//! twin: one request may straddle shards, so request counts do not
//! partition.

use std::sync::Arc;

use fc_cluster::{mem_pair, shared_backend, MemBackend, Node, NodeConfig};
use fc_obs::{Counter, Gauge, Histogram, Registry};
use fc_ring::{Ring, RingConfig};
use parking_lot::Mutex;

use crate::client::GatewayClient;
use crate::gateway::{Gateway, GatewayConfig, GatewayStats};

/// Hot-path per-shard instruments. Like the gateway-level `Instruments`,
/// these are swapped wholesale on `attach_obs`.
pub(crate) struct ShardInstruments {
    /// Node submissions routed to this shard (runs + read/trim segments +
    /// flush fan-outs).
    pub(crate) ops: Counter,
    pub(crate) read_pages: Counter,
    pub(crate) read_hits: Counter,
    /// Pre-coalesce write pages routed here.
    pub(crate) write_pages: Counter,
    pub(crate) coalesced_pages: Counter,
    pub(crate) runs: Counter,
    pub(crate) trim_pages: Counter,
    pub(crate) flushed_pages: Counter,
    /// Route flips away from a dead node on this shard.
    pub(crate) failovers: Counter,
    /// Routes restored to this shard's recovered primary.
    pub(crate) failbacks: Counter,
    /// Backoff retries after a `NodeDown` on this shard.
    pub(crate) retries: Counter,
    /// Ops abandoned at the retry deadline with both replicas down.
    pub(crate) unavailable: Counter,
    /// 1.0 while routed to the designated primary, 0.0 while failed over.
    pub(crate) health: Gauge,
    /// Per-submission service latency at this shard's node.
    pub(crate) latency_ns: Histogram,
}

impl ShardInstruments {
    pub(crate) fn detached() -> ShardInstruments {
        let health = Gauge::new();
        health.set(1.0);
        ShardInstruments {
            ops: Counter::new(),
            read_pages: Counter::new(),
            read_hits: Counter::new(),
            write_pages: Counter::new(),
            coalesced_pages: Counter::new(),
            runs: Counter::new(),
            trim_pages: Counter::new(),
            flushed_pages: Counter::new(),
            failovers: Counter::new(),
            failbacks: Counter::new(),
            retries: Counter::new(),
            unavailable: Counter::new(),
            health,
            latency_ns: Histogram::new(),
        }
    }

    /// Detached replacement seeded with `old`'s counter values — used when
    /// a live shard attach rebuilds the instrument vector with no obs
    /// registry to attach to.
    pub(crate) fn detached_from(old: &ShardInstruments) -> ShardInstruments {
        let next = ShardInstruments::detached();
        let copy = |to: &Counter, from: &Counter| to.store(from.get());
        copy(&next.ops, &old.ops);
        copy(&next.read_pages, &old.read_pages);
        copy(&next.read_hits, &old.read_hits);
        copy(&next.write_pages, &old.write_pages);
        copy(&next.coalesced_pages, &old.coalesced_pages);
        copy(&next.runs, &old.runs);
        copy(&next.trim_pages, &old.trim_pages);
        copy(&next.flushed_pages, &old.flushed_pages);
        copy(&next.failovers, &old.failovers);
        copy(&next.failbacks, &old.failbacks);
        copy(&next.retries, &old.retries);
        copy(&next.unavailable, &old.unavailable);
        next.health.set(old.health.get());
        next
    }

    /// Registry-backed replacement, seeded with the detached values so no
    /// increments are lost across the swap (histogram samples excepted,
    /// same caveat as the gateway-level instruments).
    pub(crate) fn attached(
        reg: &Registry,
        shard: usize,
        old: &ShardInstruments,
    ) -> ShardInstruments {
        let seed = |name: &str, from: &Counter| {
            let c = reg.counter(&format!("gateway.shard.{shard}.{name}"));
            c.store(from.get());
            c
        };
        let health = reg.gauge(&format!("gateway.shard.{shard}.health"));
        health.set(old.health.get());
        ShardInstruments {
            ops: seed("ops", &old.ops),
            read_pages: seed("read_pages", &old.read_pages),
            read_hits: seed("read_hits", &old.read_hits),
            write_pages: seed("write_pages", &old.write_pages),
            coalesced_pages: seed("coalesced_pages", &old.coalesced_pages),
            runs: seed("runs", &old.runs),
            trim_pages: seed("trim_pages", &old.trim_pages),
            flushed_pages: seed("flushed_pages", &old.flushed_pages),
            failovers: seed("failovers", &old.failovers),
            failbacks: seed("failbacks", &old.failbacks),
            retries: seed("retries", &old.retries),
            unavailable: seed("unavailable", &old.unavailable),
            health,
            latency_ns: reg.histogram(&format!("gateway.shard.{shard}.latency_ns")),
        }
    }

    pub(crate) fn stats(&self, shard: u16) -> ShardStats {
        ShardStats {
            shard,
            ops: self.ops.get(),
            read_pages: self.read_pages.get(),
            read_hits: self.read_hits.get(),
            write_pages: self.write_pages.get(),
            coalesced_pages: self.coalesced_pages.get(),
            runs: self.runs.get(),
            trim_pages: self.trim_pages.get(),
            flushed_pages: self.flushed_pages.get(),
            failovers: self.failovers.get(),
            failbacks: self.failbacks.get(),
            retries: self.retries.get(),
            unavailable: self.unavailable.get(),
            healthy: self.health.get() >= 0.5,
            latency_samples: self.latency_ns.count(),
            latency_sum_ns: self.latency_ns.sum(),
        }
    }
}

/// Point-in-time snapshot of one shard's share of gateway traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStats {
    pub shard: u16,
    /// Node submissions routed to this shard.
    pub ops: u64,
    pub read_pages: u64,
    pub read_hits: u64,
    /// Pre-coalesce write pages routed to this shard.
    pub write_pages: u64,
    pub coalesced_pages: u64,
    pub runs: u64,
    pub trim_pages: u64,
    pub flushed_pages: u64,
    /// Route flips away from a dead node on this shard.
    pub failovers: u64,
    /// Routes restored to this shard's recovered primary.
    pub failbacks: u64,
    /// Backoff retries after a `NodeDown` on this shard.
    pub retries: u64,
    /// Ops abandoned at the retry deadline with both replicas down.
    pub unavailable: u64,
    /// True while the route points at the designated primary (the
    /// `gateway.shard.{i}.health` gauge at 1.0).
    pub healthy: bool,
    /// Latency samples recorded at this shard (one per submission).
    pub latency_samples: u64,
    pub latency_sum_ns: u64,
}

/// Column-wise sum of [`ShardStats`] — the left-hand side of the
/// counter-sum identity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardStatsSum {
    pub read_pages: u64,
    pub read_hits: u64,
    pub write_pages: u64,
    pub coalesced_pages: u64,
    pub runs: u64,
    pub trim_pages: u64,
    pub flushed_pages: u64,
    pub failovers: u64,
    pub failbacks: u64,
    pub retries: u64,
    pub unavailable: u64,
}

impl ShardStatsSum {
    /// Fold per-shard snapshots into their column sums.
    pub fn of(shards: &[ShardStats]) -> ShardStatsSum {
        let mut s = ShardStatsSum::default();
        for sh in shards {
            s.read_pages += sh.read_pages;
            s.read_hits += sh.read_hits;
            s.write_pages += sh.write_pages;
            s.coalesced_pages += sh.coalesced_pages;
            s.runs += sh.runs;
            s.trim_pages += sh.trim_pages;
            s.flushed_pages += sh.flushed_pages;
            s.failovers += sh.failovers;
            s.failbacks += sh.failbacks;
            s.retries += sh.retries;
            s.unavailable += sh.unavailable;
        }
        s
    }

    /// The counter-sum identity: every column equals its aggregate
    /// gateway counter — including the failover-path counters, which
    /// always move for a specific shard. Returns the first mismatch as
    /// `Err((name, shard_sum, gateway_total))`.
    pub fn matches(&self, g: &GatewayStats) -> Result<(), (&'static str, u64, u64)> {
        let checks: [(&'static str, u64, u64); 11] = [
            ("read_pages", self.read_pages, g.read_pages),
            ("read_hits", self.read_hits, g.read_hits),
            ("write_pages", self.write_pages, g.write_pages),
            ("coalesced_pages", self.coalesced_pages, g.coalesced_pages),
            ("runs", self.runs, g.runs),
            ("trim_pages", self.trim_pages, g.trim_pages),
            ("flushed_pages", self.flushed_pages, g.flushed_pages),
            ("failovers", self.failovers, g.failovers),
            ("failbacks", self.failbacks, g.failbacks),
            ("retries", self.retries, g.retries),
            ("unavailable", self.unavailable, g.unavailable),
        ];
        for (name, sum, total) in checks {
            if sum != total {
                return Err((name, sum, total));
            }
        }
        Ok(())
    }
}

/// A gateway fronting N cooperative pairs, with both nodes of every pair
/// wired in: the primaries carry traffic, and each secondary doubles as
/// its shard's failover target (the gateway's circuit breaker flips the
/// route to it when the primary dies, and back after the pair re-forms).
pub struct ShardedGateway {
    gateway: Arc<Gateway>,
    /// B-side of each pair, index = shard id. Shared with the gateway's
    /// per-shard routing state; grows when a pair is attached live.
    secondaries: Mutex<Vec<Arc<Node>>>,
}

impl ShardedGateway {
    /// Front `primaries[i]` (pair i's client-facing node) for ring shard
    /// `i`, with `secondaries[i]` as its failover target. The ring must
    /// contain exactly the pairs `0..primaries.len()`.
    pub fn from_pairs(
        cfg: GatewayConfig,
        ring: Ring,
        primaries: Vec<Arc<Node>>,
        secondaries: Vec<Arc<Node>>,
    ) -> ShardedGateway {
        ShardedGateway {
            gateway: Gateway::new_sharded_with_secondaries(
                cfg,
                ring,
                primaries,
                secondaries.clone(),
            ),
            secondaries: Mutex::new(secondaries),
        }
    }

    /// Spawn `pairs` in-memory cooperative pairs (each A/B over a
    /// crossbeam link, sharing one backend per pair, node ids `2i`/`2i+1`)
    /// and front them with a sharded gateway. The node block geometry is
    /// aligned with `cfg.pages_per_block`.
    pub fn spawn_mem(cfg: GatewayConfig, ring_cfg: RingConfig, pairs: u16) -> ShardedGateway {
        ShardedGateway::spawn_mem_with(cfg, ring_cfg, pairs, |_| {})
    }

    /// [`ShardedGateway::spawn_mem`] with a hook to adjust every node's
    /// [`NodeConfig`] before spawn — how the load generator applies
    /// replication-pipeline knobs (`repl_window`, `repl_batch_pages`,
    /// `legacy_repl`) uniformly across the cluster.
    pub fn spawn_mem_with(
        cfg: GatewayConfig,
        ring_cfg: RingConfig,
        pairs: u16,
        tune: impl Fn(&mut NodeConfig),
    ) -> ShardedGateway {
        assert!(pairs >= 1, "a cluster needs at least one pair");
        let mut primaries = Vec::with_capacity(pairs as usize);
        let mut secondaries = Vec::with_capacity(pairs as usize);
        for i in 0..pairs {
            let (ta, tb) = mem_pair();
            let backend = shared_backend(MemBackend::default());
            let mut cfg_a = NodeConfig::test_profile((2 * i) as u8);
            cfg_a.pages_per_block = cfg.pages_per_block;
            tune(&mut cfg_a);
            let mut cfg_b = NodeConfig::test_profile((2 * i + 1) as u8);
            cfg_b.pages_per_block = cfg.pages_per_block;
            tune(&mut cfg_b);
            primaries.push(Arc::new(Node::spawn(cfg_a, ta, backend.clone())));
            secondaries.push(Arc::new(Node::spawn(cfg_b, tb, backend)));
        }
        let ring = Ring::with_pairs(ring_cfg, pairs);
        ShardedGateway::from_pairs(cfg, ring, primaries, secondaries)
    }

    /// The wrapped gateway (serve sessions, attach obs, snapshot stats).
    pub fn gateway(&self) -> &Arc<Gateway> {
        &self.gateway
    }

    /// Pair `shard`'s designated primary node (regardless of where the
    /// route currently points).
    pub fn primary(&self, shard: u16) -> Arc<Node> {
        self.gateway.shard_backend(shard).primary.clone()
    }

    /// Pair `shard`'s secondary node.
    pub fn secondary(&self, shard: u16) -> Arc<Node> {
        self.secondaries.lock()[shard as usize].clone()
    }

    /// Number of pair slots behind the gateway (attached slots, including
    /// any pair already rebalanced out of the ring).
    pub fn shards(&self) -> u16 {
        self.secondaries.lock().len() as u16
    }

    /// Attach a new pair as the next shard slot and return its id — the
    /// first step of a live scale-up. The slot takes no traffic until a
    /// rebalance installs a ring that includes it (see `fc-rebalance`).
    pub fn attach_pair(&self, primary: Arc<Node>, secondary: Arc<Node>) -> u16 {
        let mut secondaries = self.secondaries.lock();
        let shard = self
            .gateway
            .attach_shard(primary, Some(secondary.clone()))
            .expect("ShardedGateway is always sharded");
        secondaries.push(secondary);
        shard
    }

    /// Connect an in-memory client (see [`Gateway::connect_mem`]).
    pub fn connect_mem(&self) -> GatewayClient {
        self.gateway.connect_mem()
    }

    /// Connect an in-memory client with a chosen id.
    pub fn connect_mem_as(&self, client_id: u64) -> GatewayClient {
        self.gateway.connect_mem_as(client_id)
    }

    /// Aggregate gateway stats.
    pub fn stats(&self) -> GatewayStats {
        self.gateway.stats()
    }

    /// Per-shard stats, index = shard id.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.gateway.shard_stats()
    }

    /// Atomic combined snapshot — see [`Gateway::stats_with_shards`]. The
    /// counter-sum identity ([`ShardStatsSum::matches`]) holds on the
    /// returned pair even under concurrent traffic.
    pub fn stats_with_shards(&self) -> (GatewayStats, Vec<ShardStats>) {
        self.gateway.stats_with_shards()
    }

    /// Shut down the gateway sessions, then every pair node. The
    /// secondaries are `Arc`-shared with the gateway's routing state, so
    /// they stop via [`Node::quiesce`] (their pump threads join when the
    /// last `Arc` drops).
    pub fn shutdown(&self) {
        self.gateway.shutdown();
        for node in self.secondaries.lock().iter() {
            node.quiesce();
        }
    }
}
