//! Synchronous gateway client.
//!
//! One [`GatewayClient`] is one session: a Hello handshake, then
//! request/reply I/O. The blocking helpers ([`GatewayClient::write`],
//! [`GatewayClient::read`], …) issue one request and wait for its reply;
//! the pipelined half ([`GatewayClient::send_write`] /
//! [`GatewayClient::recv_reply`]) lets a load generator keep many requests
//! in flight — the gateway replies in receive order per session, so ids
//! come back in issue order.

use std::io::Write as _;
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::conn::MemClientConn;
use crate::proto::{decode_reply, encode_request, ErrorCode, Reply, Request, PROTO_VERSION};

/// Client-side failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// The gateway shed this request (admission control). Retry later.
    Busy,
    /// Every replica of a shard this request touched is down (proto v2);
    /// retry after the hinted delay — resends are exactly-once at the
    /// nodes.
    Unavailable { retry_after_ms: u32 },
    /// The gateway refused the request outright.
    Rejected(ErrorCode),
    /// No reply within the client's timeout.
    TimedOut,
    /// Transport gone: gateway shut down or socket error.
    Disconnected,
    /// The gateway answered with a reply that doesn't match the request.
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Busy => write!(f, "shed by admission control"),
            ClientError::Unavailable { retry_after_ms } => {
                write!(f, "shard unavailable, retry after {retry_after_ms} ms")
            }
            ClientError::Rejected(c) => write!(f, "rejected: {}", c.name()),
            ClientError::TimedOut => write!(f, "timed out waiting for reply"),
            ClientError::Disconnected => write!(f, "gateway disconnected"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Outcome of an acknowledged write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteAck {
    /// Pages made durable.
    pub pages: u32,
    /// True when every page was replicated to the peer's remote buffer.
    pub replicated: bool,
}

enum Conn {
    Mem(MemClientConn),
    Tcp {
        stream: Mutex<TcpStream>,
        rx: Receiver<Reply>,
        dead: Arc<AtomicBool>,
    },
}

/// One client session against a gateway.
pub struct GatewayClient {
    conn: Conn,
    client_id: u64,
    next_id: u64,
    timeout: Duration,
}

impl GatewayClient {
    /// Wrap the client half of an in-memory session (see
    /// [`Gateway::connect_mem`](crate::Gateway::connect_mem)).
    pub fn from_mem(conn: MemClientConn, client_id: u64) -> GatewayClient {
        GatewayClient {
            conn: Conn::Mem(conn),
            client_id,
            next_id: 1,
            timeout: Duration::from_secs(10),
        }
    }

    /// Connect over TCP to a gateway started with
    /// [`Gateway::listen_tcp`](crate::Gateway::listen_tcp).
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        client_id: u64,
    ) -> std::io::Result<GatewayClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let dead = Arc::new(AtomicBool::new(false));
        {
            let dead = dead.clone();
            std::thread::Builder::new()
                .name("fc-gw-client-rx".into())
                .spawn(move || reply_read_loop(reader, tx, dead))
                .expect("spawn client reader");
        }
        Ok(GatewayClient {
            conn: Conn::Tcp {
                stream: Mutex::new(stream),
                rx,
                dead,
            },
            client_id,
            next_id: 1,
            timeout: Duration::from_secs(10),
        })
    }

    /// Reply-wait budget for the blocking helpers (default 10 s).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The id this session presents to the gateway.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    fn fresh_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send(&self, req: &Request) -> Result<(), ClientError> {
        match &self.conn {
            Conn::Mem(m) => {
                m.tx.send(req.clone())
                    .map_err(|_| ClientError::Disconnected)
            }
            Conn::Tcp { stream, dead, .. } => {
                if dead.load(Ordering::SeqCst) {
                    return Err(ClientError::Disconnected);
                }
                let mut buf = BytesMut::new();
                encode_request(req, &mut buf);
                stream.lock().write_all(&buf).map_err(|_| {
                    dead.store(true, Ordering::SeqCst);
                    ClientError::Disconnected
                })
            }
        }
    }

    /// Receive the next reply, waiting up to `timeout`.
    pub fn recv_reply(&self, timeout: Duration) -> Result<Reply, ClientError> {
        let rx_result = match &self.conn {
            Conn::Mem(m) => m.rx.recv_timeout(timeout),
            Conn::Tcp { rx, .. } => rx.recv_timeout(timeout),
        };
        match rx_result {
            Ok(reply) => Ok(reply),
            Err(RecvTimeoutError::Timeout) => Err(ClientError::TimedOut),
            Err(RecvTimeoutError::Disconnected) => Err(ClientError::Disconnected),
        }
    }

    /// Wait for the reply to request `id`, skipping stale replies. Ids are
    /// issued monotonically, so a lower id is a late answer to an earlier
    /// attempt the client already gave up on (timeout, retry) — dropped
    /// rather than surfaced as a protocol violation.
    fn recv_matching(&self, id: u64, deadline: Instant) -> Result<Reply, ClientError> {
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let reply = self.recv_reply(remaining)?;
            if reply.id() < id {
                continue;
            }
            if reply.id() != id {
                return Err(ClientError::Protocol(format!(
                    "reply id {} for request id {id}",
                    reply.id()
                )));
            }
            if let Reply::Error { code, .. } = reply {
                return Err(match code {
                    ErrorCode::Busy => ClientError::Busy,
                    other => ClientError::Rejected(other),
                });
            }
            if let Reply::Unavailable { retry_after_ms, .. } = reply {
                return Err(ClientError::Unavailable { retry_after_ms });
            }
            return Ok(reply);
        }
    }

    fn call(&mut self, req: Request) -> Result<Reply, ClientError> {
        let id = req.id();
        self.send(&req)?;
        self.recv_matching(id, Instant::now() + self.timeout)
    }

    /// Open the session: version handshake. Must be the first call.
    pub fn hello(&mut self) -> Result<u32, ClientError> {
        self.send(&Request::Hello {
            version: PROTO_VERSION,
            client: self.client_id,
        })?;
        match self.recv_reply(self.timeout)? {
            Reply::HelloOk { max_inflight, .. } => Ok(max_inflight),
            Reply::Error { code, .. } => Err(ClientError::Rejected(code)),
            other => Err(ClientError::Protocol(format!(
                "expected HelloOk, got id {}",
                other.id()
            ))),
        }
    }

    /// Write consecutive pages starting at `lpn`; blocks until durable.
    pub fn write(&mut self, lpn: u64, pages: Vec<Bytes>) -> Result<WriteAck, ClientError> {
        let id = self.fresh_id();
        match self.call(Request::Write { id, lpn, pages })? {
            Reply::WriteOk {
                pages, replicated, ..
            } => Ok(WriteAck { pages, replicated }),
            other => Err(ClientError::Protocol(format!(
                "expected WriteOk, got id {}",
                other.id()
            ))),
        }
    }

    /// Read `pages` consecutive pages starting at `lpn`.
    pub fn read(&mut self, lpn: u64, pages: u32) -> Result<Vec<Option<Bytes>>, ClientError> {
        let id = self.fresh_id();
        match self.call(Request::Read { id, lpn, pages })? {
            Reply::ReadOk { pages, .. } => Ok(pages),
            other => Err(ClientError::Protocol(format!(
                "expected ReadOk, got id {}",
                other.id()
            ))),
        }
    }

    /// Trim `pages` consecutive pages starting at `lpn`.
    pub fn trim(&mut self, lpn: u64, pages: u32) -> Result<u32, ClientError> {
        let id = self.fresh_id();
        match self.call(Request::Trim { id, lpn, pages })? {
            Reply::TrimOk { pages, .. } => Ok(pages),
            other => Err(ClientError::Protocol(format!(
                "expected TrimOk, got id {}",
                other.id()
            ))),
        }
    }

    /// Durability barrier; returns the number of pages destaged.
    pub fn flush(&mut self) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        match self.call(Request::Flush { id })? {
            Reply::FlushOk { flushed, .. } => Ok(flushed),
            other => Err(ClientError::Protocol(format!(
                "expected FlushOk, got id {}",
                other.id()
            ))),
        }
    }

    // -- retrying helpers --------------------------------------------------

    /// Issue `req` and wait for its reply, retrying until `deadline`:
    /// `Busy` backs off briefly, `Unavailable` honors the gateway's
    /// `retry_after_ms` hint, and a reply timeout resends immediately.
    /// The request keeps its id across attempts, so a late reply to an
    /// earlier attempt answers the retry, and resent writes hit the
    /// node-side dedup window instead of double-applying.
    pub fn send_with_retry(
        &mut self,
        req: Request,
        deadline: Instant,
    ) -> Result<Reply, ClientError> {
        let id = req.id();
        let mut backoff = Duration::from_millis(1);
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(ClientError::TimedOut);
            }
            self.send(&req)?;
            let wait = now + self.timeout.min(deadline - now);
            let pause = match self.recv_matching(id, wait) {
                Ok(reply) => return Ok(reply),
                Err(ClientError::TimedOut) => Duration::ZERO,
                Err(ClientError::Busy) => {
                    let p = backoff;
                    backoff = (backoff * 2).min(Duration::from_millis(50));
                    p
                }
                Err(ClientError::Unavailable { retry_after_ms }) => {
                    Duration::from_millis(u64::from(retry_after_ms))
                }
                Err(other) => return Err(other),
            };
            let remaining = deadline.saturating_duration_since(Instant::now());
            if !pause.is_zero() {
                std::thread::sleep(pause.min(remaining));
            }
        }
    }

    /// [`GatewayClient::write`] with [`GatewayClient::send_with_retry`]
    /// semantics: blocks until acked or `deadline`.
    pub fn write_with_retry(
        &mut self,
        lpn: u64,
        pages: Vec<Bytes>,
        deadline: Instant,
    ) -> Result<WriteAck, ClientError> {
        let id = self.fresh_id();
        match self.send_with_retry(Request::Write { id, lpn, pages }, deadline)? {
            Reply::WriteOk {
                pages, replicated, ..
            } => Ok(WriteAck { pages, replicated }),
            other => Err(ClientError::Protocol(format!(
                "expected WriteOk, got id {}",
                other.id()
            ))),
        }
    }

    /// [`GatewayClient::read`] with [`GatewayClient::send_with_retry`]
    /// semantics: blocks until served or `deadline`.
    pub fn read_with_retry(
        &mut self,
        lpn: u64,
        pages: u32,
        deadline: Instant,
    ) -> Result<Vec<Option<Bytes>>, ClientError> {
        let id = self.fresh_id();
        match self.send_with_retry(Request::Read { id, lpn, pages }, deadline)? {
            Reply::ReadOk { pages, .. } => Ok(pages),
            other => Err(ClientError::Protocol(format!(
                "expected ReadOk, got id {}",
                other.id()
            ))),
        }
    }

    // -- pipelined half ----------------------------------------------------

    /// Fire-and-forget write: send without waiting. Returns the request id;
    /// collect the reply later with [`GatewayClient::recv_reply`].
    pub fn send_write(&mut self, lpn: u64, pages: Vec<Bytes>) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Write { id, lpn, pages })?;
        Ok(id)
    }

    /// Fire-and-forget read.
    pub fn send_read(&mut self, lpn: u64, pages: u32) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Read { id, lpn, pages })?;
        Ok(id)
    }

    /// Fire-and-forget trim.
    pub fn send_trim(&mut self, lpn: u64, pages: u32) -> Result<u64, ClientError> {
        let id = self.fresh_id();
        self.send(&Request::Trim { id, lpn, pages })?;
        Ok(id)
    }
}

fn reply_read_loop(mut stream: TcpStream, tx: Sender<Reply>, dead: Arc<AtomicBool>) {
    use std::io::Read as _;
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode_reply(&mut buf) {
            Ok(Some(reply)) => {
                if tx.send(reply).is_err() {
                    break;
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => break,
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // A link-level timeout (or signal) is not a dead socket: keep
            // reading so the session surfaces as `TimedOut` on the
            // receive path, never a spurious `Disconnected`.
            Err(ref e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}

impl Drop for GatewayClient {
    fn drop(&mut self) {
        if let Conn::Tcp { stream, dead, .. } = &self.conn {
            let _ = stream.lock().shutdown(Shutdown::Both);
            dead.store(true, Ordering::SeqCst);
        }
    }
}
