//! The gateway service: sessions, scheduling, admission, and obs.
//!
//! A [`Gateway`] fronts one `fc_cluster::Node` (typically half of a
//! FlashCoop pair) for many concurrent clients. Each accepted connection
//! gets its own session thread running [`SessionLink`] I/O:
//!
//! 1. **Handshake** — the first message must be a versioned Hello;
//!    mismatched clients are refused with `BadVersion` before any I/O.
//! 2. **Admission** — every request passes the per-client token bucket and
//!    the global in-flight cap ([`crate::admission`]); refused requests get
//!    an explicit `Busy` reply instead of unbounded queueing.
//! 3. **Scheduling** — admitted writes open a short batch window: already-
//!    pipelined writes from the same session are drained (non-blocking)
//!    and coalesced into block-aligned runs ([`crate::batch`]) before one
//!    submission to the node, so adjacent pages arrive as the sequences
//!    the destage policy wants.
//!
//! Replies are sent in receive order per session, which is the property
//! clients rely on for pipelining.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use fc_cluster::Node;
use fc_obs::{Counter, Gauge, Histogram, Obs};
use fc_ring::Ring;
use parking_lot::Mutex;

use crate::admission::{Admission, AdmissionConfig, Permit, ShedReason};
use crate::batch::{coalesce, coalesce_sharded, WriteRun};
use crate::client::GatewayClient;
use crate::conn::{mem_session, SessionLink, TcpSessionLink};
use crate::proto::{ErrorCode, Reply, Request, PROTO_VERSION};
use crate::shard::{ShardInstruments, ShardStats};

/// Gateway knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Admission gates (token buckets + global in-flight cap).
    pub admission: AdmissionConfig,
    /// Block size (pages) used for run alignment — match the node's
    /// `pages_per_block` so runs map onto destage units.
    pub pages_per_block: u32,
    /// Largest page count accepted in one request; larger ⇒ `BadRequest`.
    pub max_req_pages: u32,
    /// Max additional pipelined writes drained into one batch window.
    pub batch_window: usize,
    /// Session-loop poll interval (also the shutdown latency bound).
    pub session_poll: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            admission: AdmissionConfig::default(),
            pages_per_block: 4,
            max_req_pages: 1024,
            batch_window: 32,
            session_poll: Duration::from_millis(25),
        }
    }
}

impl GatewayConfig {
    /// Deterministic test profile: unlimited admission (no shedding), tiny
    /// blocks to exercise run splitting.
    pub fn test_profile() -> Self {
        GatewayConfig {
            admission: AdmissionConfig::unlimited(),
            ..GatewayConfig::default()
        }
    }
}

/// Point-in-time snapshot of gateway activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    pub sessions_started: u64,
    pub sessions_ended: u64,
    /// Post-handshake requests received (admitted + shed + bad).
    pub requests: u64,
    pub admitted: u64,
    pub shed_total: u64,
    pub shed_rate_limited: u64,
    pub shed_queue_full: u64,
    pub bad_requests: u64,
    pub writes: u64,
    pub write_pages: u64,
    pub reads: u64,
    pub read_pages: u64,
    pub read_hits: u64,
    pub trims: u64,
    /// Pages covered by trim requests (partitions exactly over shards).
    pub trim_pages: u64,
    pub flushes: u64,
    /// Dirty pages destaged by flush requests, summed over every node the
    /// flush fanned out to.
    pub flushed_pages: u64,
    /// Write submissions to the node (one per batch window).
    pub batches: u64,
    /// Contiguous runs those batches decomposed into.
    pub runs: u64,
    /// Pages merged away by last-writer-wins coalescing.
    pub coalesced_pages: u64,
    /// Requests currently in service.
    pub inflight: u32,
    /// High-water mark of concurrent admitted requests.
    pub max_inflight_seen: u32,
}

impl GatewayStats {
    /// Fraction of post-handshake requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed_total as f64 / self.requests as f64
        }
    }
}

/// Hot-path instruments. Swapped wholesale by [`Gateway::attach_obs`] —
/// attach before serving traffic so no increments land in the detached set.
struct Instruments {
    sessions_started: Counter,
    sessions_ended: Counter,
    requests: Counter,
    admitted: Counter,
    shed_total: Counter,
    shed_rate_limited: Counter,
    shed_queue_full: Counter,
    bad_requests: Counter,
    writes: Counter,
    write_pages: Counter,
    reads: Counter,
    read_pages: Counter,
    read_hits: Counter,
    trims: Counter,
    trim_pages: Counter,
    flushes: Counter,
    flushed_pages: Counter,
    batches: Counter,
    runs: Counter,
    coalesced_pages: Counter,
    inflight_gauge: Gauge,
    latency_ns: Histogram,
    obs: Option<Obs>,
}

impl Instruments {
    fn detached() -> Instruments {
        Instruments {
            sessions_started: Counter::new(),
            sessions_ended: Counter::new(),
            requests: Counter::new(),
            admitted: Counter::new(),
            shed_total: Counter::new(),
            shed_rate_limited: Counter::new(),
            shed_queue_full: Counter::new(),
            bad_requests: Counter::new(),
            writes: Counter::new(),
            write_pages: Counter::new(),
            reads: Counter::new(),
            read_pages: Counter::new(),
            read_hits: Counter::new(),
            trims: Counter::new(),
            trim_pages: Counter::new(),
            flushes: Counter::new(),
            flushed_pages: Counter::new(),
            batches: Counter::new(),
            runs: Counter::new(),
            coalesced_pages: Counter::new(),
            inflight_gauge: Gauge::new(),
            latency_ns: Histogram::new(),
            obs: None,
        }
    }

    fn event(&self, kind: &'static str) -> Option<fc_obs::Event> {
        self.obs.as_ref().map(|o| o.wall_event("gateway", kind))
    }

    fn emit(&self, ev: Option<fc_obs::Event>) {
        if let (Some(obs), Some(ev)) = (self.obs.as_ref(), ev) {
            obs.emit(ev);
        }
    }
}

/// Where admitted requests go: one pair, or N pairs behind a consistent-
/// hash ring.
enum Backend {
    /// The original single-pair mode: every request hits this node.
    Single(Arc<Node>),
    /// Sharded mode: `ring` maps logical blocks to an index into `nodes`
    /// (pair `i`'s client-facing primary).
    Sharded { ring: Ring, nodes: Vec<Arc<Node>> },
}

/// A running gateway. Create with [`Gateway::new`] (one pair) or
/// [`Gateway::new_sharded`] (N pairs behind a ring; usually via
/// [`crate::ShardedGateway`]), connect clients with
/// [`Gateway::connect_mem`] or [`Gateway::listen_tcp`] +
/// [`GatewayClient::connect_tcp`](crate::GatewayClient::connect_tcp).
pub struct Gateway {
    cfg: GatewayConfig,
    backend: Backend,
    admission: Admission,
    instruments: Mutex<Arc<Instruments>>,
    /// One entry per shard (empty in single mode). Swapped wholesale by
    /// `attach_obs`, same discipline as `instruments`.
    shard_instruments: Mutex<Arc<Vec<ShardInstruments>>>,
    next_mem_client: AtomicU64,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl Gateway {
    /// Wrap a node. The node keeps its own lifecycle (pump thread,
    /// replication); the gateway only adds the client-facing front end.
    pub fn new(cfg: GatewayConfig, node: Arc<Node>) -> Arc<Gateway> {
        Gateway::with_backend(cfg, Backend::Single(node), 0)
    }

    /// Front `nodes[i]` (pair i's primary) for ring shard `i`. The ring
    /// must contain exactly the pairs `0..nodes.len()` so every lookup
    /// resolves to a node.
    pub fn new_sharded(cfg: GatewayConfig, ring: Ring, nodes: Vec<Arc<Node>>) -> Arc<Gateway> {
        assert!(!nodes.is_empty(), "sharded gateway needs at least one pair");
        let expected: Vec<u16> = (0..nodes.len() as u16).collect();
        assert_eq!(
            ring.pairs(),
            expected.as_slice(),
            "ring membership must be exactly 0..{}",
            nodes.len()
        );
        let shards = nodes.len();
        Gateway::with_backend(cfg, Backend::Sharded { ring, nodes }, shards)
    }

    fn with_backend(cfg: GatewayConfig, backend: Backend, shards: usize) -> Arc<Gateway> {
        Arc::new(Gateway {
            admission: Admission::new(cfg.admission),
            cfg,
            backend,
            instruments: Mutex::new(Arc::new(Instruments::detached())),
            shard_instruments: Mutex::new(Arc::new(
                (0..shards).map(|_| ShardInstruments::detached()).collect(),
            )),
            next_mem_client: AtomicU64::new(1),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Mutex::new(Vec::new()),
            acceptors: Mutex::new(Vec::new()),
        })
    }

    /// The node behind a single-pair gateway. Panics in sharded mode —
    /// there is no one node; use [`Gateway::shard_nodes`] or
    /// [`Gateway::read_page`].
    pub fn node(&self) -> &Arc<Node> {
        match &self.backend {
            Backend::Single(node) => node,
            Backend::Sharded { .. } => {
                panic!("Gateway::node() on a sharded gateway; use shard_nodes()/read_page()")
            }
        }
    }

    /// Every primary node behind this gateway (one entry in single mode,
    /// index = shard id in sharded mode).
    pub fn shard_nodes(&self) -> &[Arc<Node>] {
        match &self.backend {
            Backend::Single(node) => std::slice::from_ref(node),
            Backend::Sharded { nodes, .. } => nodes,
        }
    }

    /// The routing ring (sharded mode only).
    pub fn ring(&self) -> Option<&Ring> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded { ring, .. } => Some(ring),
        }
    }

    /// Read one logical page through the router, without client
    /// attribution — the primitive behind state digests and scrub-style
    /// full-space sweeps.
    pub fn read_page(&self, lpn: u64) -> Option<Vec<u8>> {
        match &self.backend {
            Backend::Single(node) => node.read(lpn),
            Backend::Sharded { ring, nodes } => {
                nodes[usize::from(ring.shard_of_lpn(lpn))].read(lpn)
            }
        }
    }

    /// Per-shard traffic snapshots, index = shard id. Empty for a
    /// single-pair gateway.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let shard_ins = self.shard_instruments.lock().clone();
        shard_ins
            .iter()
            .enumerate()
            .map(|(i, ins)| ins.stats(i as u16))
            .collect()
    }

    /// Register `gateway.*` metrics (counters seeded with current values,
    /// the `gateway.inflight` gauge, the `gateway.latency_ns` histogram)
    /// and start emitting wall-stamped `gateway` events (`session_start` /
    /// `session_end` / `shed` / `bad_request` / `flush`). Attach *before*
    /// serving traffic: histogram samples recorded earlier are not carried
    /// over.
    pub fn attach_obs(&self, obs: &Obs) {
        let reg = obs.registry();
        let old = self.instruments.lock().clone();
        let seed = |name: &str, from: &Counter| {
            let c = reg.counter(name);
            c.store(from.get());
            c
        };
        let next = Instruments {
            sessions_started: seed("gateway.sessions_started", &old.sessions_started),
            sessions_ended: seed("gateway.sessions_ended", &old.sessions_ended),
            requests: seed("gateway.requests", &old.requests),
            admitted: seed("gateway.admitted", &old.admitted),
            shed_total: seed("gateway.shed_total", &old.shed_total),
            shed_rate_limited: seed("gateway.shed_rate_limited", &old.shed_rate_limited),
            shed_queue_full: seed("gateway.shed_queue_full", &old.shed_queue_full),
            bad_requests: seed("gateway.bad_requests", &old.bad_requests),
            writes: seed("gateway.writes", &old.writes),
            write_pages: seed("gateway.write_pages", &old.write_pages),
            reads: seed("gateway.reads", &old.reads),
            read_pages: seed("gateway.read_pages", &old.read_pages),
            read_hits: seed("gateway.read_hits", &old.read_hits),
            trims: seed("gateway.trims", &old.trims),
            trim_pages: seed("gateway.trim_pages", &old.trim_pages),
            flushes: seed("gateway.flushes", &old.flushes),
            flushed_pages: seed("gateway.flushed_pages", &old.flushed_pages),
            batches: seed("gateway.batches", &old.batches),
            runs: seed("gateway.runs", &old.runs),
            coalesced_pages: seed("gateway.coalesced_pages", &old.coalesced_pages),
            inflight_gauge: reg.gauge("gateway.inflight"),
            latency_ns: reg.histogram("gateway.latency_ns"),
            obs: Some(obs.clone()),
        };
        *self.instruments.lock() = Arc::new(next);

        // Per-shard twins under `gateway.shard.{i}.*` (sharded mode only).
        let old_shards = self.shard_instruments.lock().clone();
        let next_shards: Vec<ShardInstruments> = old_shards
            .iter()
            .enumerate()
            .map(|(i, old)| ShardInstruments::attached(reg, i, old))
            .collect();
        *self.shard_instruments.lock() = Arc::new(next_shards);
    }

    fn instruments(&self) -> Arc<Instruments> {
        self.instruments.lock().clone()
    }

    fn shard_instruments(&self) -> Arc<Vec<ShardInstruments>> {
        self.shard_instruments.lock().clone()
    }

    /// Monotonic nanoseconds since gateway start — the admission clock.
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Snapshot of gateway activity.
    pub fn stats(&self) -> GatewayStats {
        let ins = self.instruments();
        GatewayStats {
            sessions_started: ins.sessions_started.get(),
            sessions_ended: ins.sessions_ended.get(),
            requests: ins.requests.get(),
            admitted: ins.admitted.get(),
            shed_total: ins.shed_total.get(),
            shed_rate_limited: ins.shed_rate_limited.get(),
            shed_queue_full: ins.shed_queue_full.get(),
            bad_requests: ins.bad_requests.get(),
            writes: ins.writes.get(),
            write_pages: ins.write_pages.get(),
            reads: ins.reads.get(),
            read_pages: ins.read_pages.get(),
            read_hits: ins.read_hits.get(),
            trims: ins.trims.get(),
            trim_pages: ins.trim_pages.get(),
            flushes: ins.flushes.get(),
            flushed_pages: ins.flushed_pages.get(),
            batches: ins.batches.get(),
            runs: ins.runs.get(),
            coalesced_pages: ins.coalesced_pages.get(),
            inflight: self.admission.inflight(),
            max_inflight_seen: self.admission.max_inflight_seen(),
        }
    }

    /// Read `[lpn, lpn+pages)` through the router. Returns the page
    /// payloads (present/absent) and the hit count. In sharded mode the
    /// span is walked as contiguous same-shard segments, each counted and
    /// timed against its shard's `gateway.shard.*` instruments — a read
    /// straddling a shard boundary touches every owning pair.
    fn do_read(&self, client: u64, lpn: u64, pages: u32) -> (Vec<Option<Bytes>>, u64) {
        let mut out = Vec::with_capacity(pages as usize);
        let mut hits = 0u64;
        match &self.backend {
            Backend::Single(node) => {
                for i in 0..u64::from(pages) {
                    match node.read_from(client, lpn + i) {
                        Some(data) => {
                            hits += 1;
                            out.push(Some(Bytes::from(data)));
                        }
                        None => out.push(None),
                    }
                }
            }
            Backend::Sharded { ring, nodes } => {
                let shard_ins = self.shard_instruments();
                for (shard, start, count) in segments(ring, lpn, pages) {
                    let ins = &shard_ins[usize::from(shard)];
                    let started = Instant::now();
                    let mut seg_hits = 0u64;
                    for i in 0..u64::from(count) {
                        match nodes[usize::from(shard)].read_from(client, start + i) {
                            Some(data) => {
                                seg_hits += 1;
                                out.push(Some(Bytes::from(data)));
                            }
                            None => out.push(None),
                        }
                    }
                    ins.ops.inc();
                    ins.read_pages.add(u64::from(count));
                    ins.read_hits.add(seg_hits);
                    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
                    hits += seg_hits;
                }
            }
        }
        (out, hits)
    }

    /// Trim `[lpn, lpn+pages)` through the router, segment-counted per
    /// shard like [`Gateway::do_read`].
    fn do_trim(&self, client: u64, lpn: u64, pages: u32) {
        match &self.backend {
            Backend::Single(node) => {
                for i in 0..u64::from(pages) {
                    node.delete_from(client, lpn + i);
                }
            }
            Backend::Sharded { ring, nodes } => {
                let shard_ins = self.shard_instruments();
                for (shard, start, count) in segments(ring, lpn, pages) {
                    let ins = &shard_ins[usize::from(shard)];
                    let started = Instant::now();
                    for i in 0..u64::from(count) {
                        nodes[usize::from(shard)].delete_from(client, start + i);
                    }
                    ins.ops.inc();
                    ins.trim_pages.add(u64::from(count));
                    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    /// Flush dirty pages: one node in single mode, fanned out to every
    /// pair in sharded mode. Returns total pages destaged.
    fn do_flush(&self) -> u64 {
        match &self.backend {
            Backend::Single(node) => node.flush_dirty(),
            Backend::Sharded { nodes, .. } => {
                let shard_ins = self.shard_instruments();
                let mut total = 0u64;
                for (i, node) in nodes.iter().enumerate() {
                    let ins = &shard_ins[i];
                    let started = Instant::now();
                    let flushed = node.flush_dirty();
                    ins.ops.inc();
                    ins.flushed_pages.add(flushed);
                    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
                    total += flushed;
                }
                total
            }
        }
    }

    /// Coalesce one batch window's pages into runs and submit them. Runs
    /// never cross a logical-block boundary, and in sharded mode never a
    /// shard boundary either ([`coalesce_sharded`]) — each run goes whole
    /// to exactly one pair.
    fn submit_writes(&self, client: u64, flat: Vec<(u64, Bytes)>) -> Submission {
        let mut sub = Submission::default();
        match &self.backend {
            Backend::Single(node) => {
                let runs: Vec<WriteRun> = coalesce(flat, self.cfg.pages_per_block);
                for run in &runs {
                    sub.out_pages += run.len() as u64;
                    sub.replicated += node.write_run(client, run.lpn, &run.pages).replicated;
                }
                sub.runs = runs.len() as u64;
            }
            Backend::Sharded { ring, nodes } => {
                let shard_ins = self.shard_instruments();
                // Pre-coalesce attribution: which shard each incoming page
                // belongs to (duplicates of one lpn always share a shard,
                // so per-shard dedup accounting stays exact).
                let mut in_per_shard = vec![0u64; nodes.len()];
                for (lpn, _) in &flat {
                    in_per_shard[usize::from(ring.shard_of_lpn(*lpn))] += 1;
                }
                let tagged =
                    coalesce_sharded(flat, self.cfg.pages_per_block, |lpn| ring.shard_of_lpn(lpn));
                let mut out_per_shard = vec![0u64; nodes.len()];
                for (shard, run) in &tagged {
                    let ins = &shard_ins[usize::from(*shard)];
                    let started = Instant::now();
                    let outcome = nodes[usize::from(*shard)].write_run(client, run.lpn, &run.pages);
                    ins.ops.inc();
                    ins.runs.inc();
                    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
                    out_per_shard[usize::from(*shard)] += run.len() as u64;
                    sub.out_pages += run.len() as u64;
                    sub.replicated += outcome.replicated;
                }
                for (i, ins) in shard_ins.iter().enumerate() {
                    ins.write_pages.add(in_per_shard[i]);
                    // This shard's share of last-writer-wins dedup.
                    ins.coalesced_pages.add(in_per_shard[i] - out_per_shard[i]);
                }
                sub.runs = tagged.len() as u64;
            }
        }
        sub
    }

    /// Serve one session on its own thread.
    pub fn serve(self: &Arc<Self>, link: impl SessionLink + 'static) {
        let gw = self.clone();
        let handle = std::thread::Builder::new()
            .name("fc-gw-session".into())
            .spawn(move || session_loop(gw, Box::new(link)))
            .expect("spawn gateway session");
        self.sessions.lock().push(handle);
    }

    /// Connect an in-memory client: builds a channel pair, serves the
    /// gateway half, returns a ready (pre-Hello) client for the other.
    pub fn connect_mem(self: &Arc<Self>) -> GatewayClient {
        let id = self.next_mem_client.fetch_add(1, Ordering::Relaxed);
        self.connect_mem_as(id)
    }

    /// Like [`Gateway::connect_mem`] with a caller-chosen client id.
    pub fn connect_mem_as(self: &Arc<Self>, client_id: u64) -> GatewayClient {
        let (client_half, server_half) = mem_session();
        self.serve(server_half);
        GatewayClient::from_mem(client_half, client_id)
    }

    /// Listen for TCP clients; returns the bound address (pass
    /// `"127.0.0.1:0"` for an ephemeral port).
    pub fn listen_tcp(self: &Arc<Self>, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gw = self.clone();
        let handle = std::thread::Builder::new()
            .name("fc-gw-accept".into())
            .spawn(move || {
                while !gw.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            match TcpSessionLink::new(stream) {
                                Ok(link) => gw.serve(link),
                                Err(_) => continue,
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn gateway acceptor");
        self.acceptors.lock().push(handle);
        Ok(local)
    }

    /// Stop accepting, wind down session threads, and join them. Clients
    /// observe `Disconnected` afterwards.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.acceptors.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// Outcome of one batch-window submission.
#[derive(Debug, Default)]
struct Submission {
    /// Post-coalesce pages actually submitted.
    out_pages: u64,
    /// Contiguous runs submitted.
    runs: u64,
    /// Pages the nodes reported replicated to their peers.
    replicated: u64,
}

/// Walk `[lpn, lpn+pages)` as maximal contiguous same-shard segments:
/// `(shard, start, count)` triples in lpn order. Routing is per ring
/// block, so segments break exactly at owner changes.
fn segments(ring: &Ring, lpn: u64, pages: u32) -> Vec<(u16, u64, u32)> {
    let mut segs: Vec<(u16, u64, u32)> = Vec::new();
    for i in 0..u64::from(pages) {
        let page = lpn + i;
        let shard = ring.shard_of_lpn(page);
        match segs.last_mut() {
            Some((s, start, count)) if *s == shard && *start + u64::from(*count) == page => {
                *count += 1;
            }
            _ => segs.push((shard, page, 1)),
        }
    }
    segs
}

// ---------------------------------------------------------------------------
// Session loop
// ---------------------------------------------------------------------------

fn session_loop(gw: Arc<Gateway>, link: Box<dyn SessionLink>) {
    let ins = gw.instruments();
    ins.sessions_started.inc();
    ins.emit(ins.event("session_start"));

    let Some(client) = handshake(&gw, link.as_ref()) else {
        ins.sessions_ended.inc();
        ins.emit(ins.event("session_end"));
        return;
    };

    let mut carried: Option<Request> = None;
    while !gw.shutdown.load(Ordering::SeqCst) {
        let req = match carried.take() {
            Some(r) => r,
            None => match link.recv_timeout(gw.cfg.session_poll) {
                Ok(Some(r)) => r,
                Ok(None) => continue,
                Err(_) => break,
            },
        };
        match handle_request(&gw, link.as_ref(), client, req) {
            Ok(next) => carried = next,
            Err(_) => break,
        }
    }

    let ins = gw.instruments();
    ins.sessions_ended.inc();
    ins.emit(
        ins.event("session_end")
            .map(|e| e.u64_field("client", client)),
    );
}

/// First message must be a matching-version Hello. Returns the client id,
/// or `None` if the session should be dropped.
fn handshake(gw: &Arc<Gateway>, link: &dyn SessionLink) -> Option<u64> {
    let ins = gw.instruments();
    while !gw.shutdown.load(Ordering::SeqCst) {
        match link.recv_timeout(gw.cfg.session_poll) {
            Ok(Some(Request::Hello { version, client })) => {
                if version != PROTO_VERSION {
                    ins.bad_requests.inc();
                    ins.emit(
                        ins.event("bad_request")
                            .map(|e| e.str_field("why", "version")),
                    );
                    let _ = link.send(Reply::Error {
                        id: 0,
                        code: ErrorCode::BadVersion,
                    });
                    return None;
                }
                let max_inflight = gw.admission.config().max_inflight;
                link.send(Reply::HelloOk {
                    version: PROTO_VERSION,
                    max_inflight,
                })
                .ok()?;
                return Some(client);
            }
            Ok(Some(other)) => {
                // I/O before Hello: refuse, keep waiting for the handshake.
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id: other.id(),
                    code: ErrorCode::BadRequest,
                })
                .ok()?;
            }
            Ok(None) => continue,
            Err(_) => return None,
        }
    }
    None
}

fn valid_page_count(gw: &Gateway, pages: u32) -> bool {
    pages >= 1 && pages <= gw.cfg.max_req_pages
}

/// Process one request (and, for writes, a drained batch of pipelined
/// writes behind it). Returns a non-write request drained out of the batch
/// window, which the caller must process next — preserving reply order.
fn handle_request(
    gw: &Arc<Gateway>,
    link: &dyn SessionLink,
    client: u64,
    req: Request,
) -> Result<Option<Request>, crate::conn::LinkClosed> {
    let ins = gw.instruments();
    match req {
        Request::Hello { .. } => {
            // Duplicate handshake: harmless, re-ack.
            link.send(Reply::HelloOk {
                version: PROTO_VERSION,
                max_inflight: gw.admission.config().max_inflight,
            })?;
            Ok(None)
        }
        Request::Write { id, lpn, pages } => write_batch(gw, link, client, id, lpn, pages),
        Request::Read { id, lpn, pages } => {
            ins.requests.inc();
            if !valid_page_count(gw, pages) {
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id,
                    code: ErrorCode::BadRequest,
                })?;
                return Ok(None);
            }
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            let (out, hits) = gw.do_read(client, lpn, pages);
            ins.reads.inc();
            ins.read_pages.add(u64::from(pages));
            ins.read_hits.add(hits);
            finish(gw, &ins, permit, started);
            link.send(Reply::ReadOk { id, pages: out })?;
            Ok(None)
        }
        Request::Trim { id, lpn, pages } => {
            ins.requests.inc();
            if !valid_page_count(gw, pages) {
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id,
                    code: ErrorCode::BadRequest,
                })?;
                return Ok(None);
            }
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            gw.do_trim(client, lpn, pages);
            ins.trims.inc();
            ins.trim_pages.add(u64::from(pages));
            finish(gw, &ins, permit, started);
            link.send(Reply::TrimOk { id, pages })?;
            Ok(None)
        }
        Request::Flush { id } => {
            ins.requests.inc();
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            let flushed = gw.do_flush();
            ins.flushes.inc();
            ins.flushed_pages.add(flushed);
            ins.emit(
                ins.event("flush")
                    .map(|e| e.u64_field("client", client).u64_field("pages", flushed)),
            );
            finish(gw, &ins, permit, started);
            link.send(Reply::FlushOk { id, flushed })?;
            Ok(None)
        }
    }
}

/// Admission gate: `Ok(Some(permit))` admitted, `Ok(None)` shed (Busy sent).
fn admit(
    gw: &Gateway,
    ins: &Instruments,
    link: &dyn SessionLink,
    client: u64,
    id: u64,
) -> Result<Option<Permit>, crate::conn::LinkClosed> {
    match gw.admission.try_admit(client, gw.now_nanos()) {
        Ok(permit) => {
            ins.admitted.inc();
            ins.inflight_gauge
                .set_u64(u64::from(gw.admission.inflight()));
            Ok(Some(permit))
        }
        Err(reason) => {
            ins.shed_total.inc();
            match reason {
                ShedReason::RateLimited => ins.shed_rate_limited.inc(),
                ShedReason::QueueFull => ins.shed_queue_full.inc(),
            }
            ins.emit(ins.event("shed").map(|e| {
                e.u64_field("client", client)
                    .str_field("reason", reason.name())
            }));
            link.send(Reply::Error {
                id,
                code: ErrorCode::Busy,
            })?;
            Ok(None)
        }
    }
}

fn finish(gw: &Gateway, ins: &Instruments, permit: Permit, started: Instant) {
    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
    drop(permit);
    ins.inflight_gauge
        .set_u64(u64::from(gw.admission.inflight()));
}

/// One write received in the current batch window, in receive order.
/// Replies are deferred and sent strictly in this order after submission —
/// the in-order reply guarantee clients correlate ids by.
enum BatchedWrite {
    Admitted {
        id: u64,
        pages: u32,
        _permit: Permit,
    },
    Shed {
        id: u64,
    },
    Bad {
        id: u64,
    },
}

/// Validate + admit the head write, drain up to `batch_window` pipelined
/// writes behind it (each individually validated and admitted), coalesce
/// the admitted ones into runs, submit, then reply to every batched write
/// in receive order.
fn write_batch(
    gw: &Arc<Gateway>,
    link: &dyn SessionLink,
    client: u64,
    id: u64,
    lpn: u64,
    pages: Vec<Bytes>,
) -> Result<Option<Request>, crate::conn::LinkClosed> {
    let ins = gw.instruments();
    let started = Instant::now();
    let mut batch: Vec<BatchedWrite> = Vec::new();
    let mut flat: Vec<(u64, Bytes)> = Vec::new();
    let mut admitted = 0usize;
    let mut carried: Option<Request> = None;

    let consider = |req_id: u64,
                    req_lpn: u64,
                    req_pages: Vec<Bytes>,
                    batch: &mut Vec<BatchedWrite>,
                    flat: &mut Vec<(u64, Bytes)>,
                    admitted: &mut usize| {
        ins.requests.inc();
        if req_pages.is_empty() || req_pages.len() as u32 > gw.cfg.max_req_pages {
            ins.bad_requests.inc();
            batch.push(BatchedWrite::Bad { id: req_id });
            return;
        }
        match gw.admission.try_admit(client, gw.now_nanos()) {
            Ok(permit) => {
                ins.admitted.inc();
                ins.inflight_gauge
                    .set_u64(u64::from(gw.admission.inflight()));
                let n = req_pages.len() as u32;
                for (i, data) in req_pages.into_iter().enumerate() {
                    flat.push((req_lpn + i as u64, data));
                }
                *admitted += 1;
                batch.push(BatchedWrite::Admitted {
                    id: req_id,
                    pages: n,
                    _permit: permit,
                });
            }
            Err(reason) => {
                ins.shed_total.inc();
                match reason {
                    ShedReason::RateLimited => ins.shed_rate_limited.inc(),
                    ShedReason::QueueFull => ins.shed_queue_full.inc(),
                }
                ins.emit(ins.event("shed").map(|e| {
                    e.u64_field("client", client)
                        .str_field("reason", reason.name())
                }));
                batch.push(BatchedWrite::Shed { id: req_id });
            }
        }
    };

    consider(id, lpn, pages, &mut batch, &mut flat, &mut admitted);

    // Batch window: drain writes the client already pipelined. A non-write
    // is carried out to the caller so replies stay in receive order.
    while admitted <= gw.cfg.batch_window {
        match link.recv_timeout(Duration::ZERO) {
            Ok(Some(Request::Write { id, lpn, pages })) => {
                consider(id, lpn, pages, &mut batch, &mut flat, &mut admitted);
            }
            Ok(Some(other)) => {
                carried = Some(other);
                break;
            }
            Ok(None) => break,
            Err(_) => break, // reply to what we already took first
        }
    }

    let in_pages = flat.len() as u64;
    let sub = gw.submit_writes(client, flat);
    let all_replicated = sub.replicated == sub.out_pages;

    if admitted > 0 {
        ins.writes.add(admitted as u64);
        ins.write_pages.add(in_pages);
        ins.batches.inc();
        ins.runs.add(sub.runs);
        ins.coalesced_pages.add(in_pages - sub.out_pages);
        ins.latency_ns.record(started.elapsed().as_nanos() as u64);
    }

    for w in &batch {
        let reply = match w {
            BatchedWrite::Admitted { id, pages, .. } => Reply::WriteOk {
                id: *id,
                pages: *pages,
                replicated: all_replicated,
            },
            BatchedWrite::Shed { id } => Reply::Error {
                id: *id,
                code: ErrorCode::Busy,
            },
            BatchedWrite::Bad { id } => Reply::Error {
                id: *id,
                code: ErrorCode::BadRequest,
            },
        };
        link.send(reply)?;
    }
    drop(batch); // releases every admitted permit
    ins.inflight_gauge
        .set_u64(u64::from(gw.admission.inflight()));
    Ok(carried)
}
