//! The gateway service: sessions, scheduling, admission, and obs.
//!
//! A [`Gateway`] fronts one `fc_cluster::Node` (typically half of a
//! FlashCoop pair) for many concurrent clients. Each accepted connection
//! gets its own session thread running [`SessionLink`] I/O:
//!
//! 1. **Handshake** — the first message must be a versioned Hello;
//!    mismatched clients are refused with `BadVersion` before any I/O.
//! 2. **Admission** — every request passes the per-client token bucket and
//!    the global in-flight cap ([`crate::admission`]); refused requests get
//!    an explicit `Busy` reply instead of unbounded queueing.
//! 3. **Scheduling** — admitted writes open a short batch window: already-
//!    pipelined writes from the same session are drained (non-blocking)
//!    and coalesced into block-aligned runs ([`crate::batch`]) before one
//!    submission to the node, so adjacent pages arrive as the sequences
//!    the destage policy wants.
//!
//! Replies are sent in receive order per session, which is the property
//! clients rely on for pipelining.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use std::collections::{HashMap, HashSet};

use bytes::Bytes;
use fc_cluster::{MigrateError, Node, NodeDown, PairState};
use fc_obs::{Counter, Gauge, Histogram, Obs};
use fc_ring::Ring;
use parking_lot::{Mutex, RwLock};

use crate::admission::{Admission, AdmissionConfig, Permit, ShedReason};
use crate::batch::{coalesce, coalesce_sharded, WriteRun};
use crate::client::GatewayClient;
use crate::conn::{mem_session, SessionLink, TcpSessionLink};
use crate::health::{BreakerState, Replica, ShardHealth};
use crate::proto::{ErrorCode, Reply, Request, MIN_PROTO_VERSION, PROTO_VERSION};
use crate::shard::{ShardInstruments, ShardStats};

/// Gateway knobs.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Admission gates (token buckets + global in-flight cap).
    pub admission: AdmissionConfig,
    /// Block size (pages) used for run alignment — match the node's
    /// `pages_per_block` so runs map onto destage units.
    pub pages_per_block: u32,
    /// Largest page count accepted in one request; larger ⇒ `BadRequest`.
    pub max_req_pages: u32,
    /// Max additional pipelined writes drained into one batch window.
    pub batch_window: usize,
    /// Session-loop poll interval (also the shutdown latency bound).
    pub session_poll: Duration,
    /// Consecutive `NodeDown` errors on a shard's primary before its
    /// circuit breaker opens and the route fails over to the secondary.
    pub breaker_threshold: u32,
    /// Open-breaker cooldown; doubles as the failback probe cadence and
    /// the `retry_after_ms` hint in `Unavailable` replies.
    pub breaker_cooldown: Duration,
    /// Total in-gateway retry budget for one shard op before giving up
    /// with `Unavailable` — the bound on how long a request can stall on
    /// a dead shard.
    pub retry_deadline: Duration,
    /// Base retry backoff (exponential with jitter, capped at 100 ms).
    pub retry_backoff: Duration,
    /// How long a failback probe waits for the primary's recovery
    /// snapshot from its peer before re-opening the breaker.
    pub failback_timeout: Duration,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            admission: AdmissionConfig::default(),
            pages_per_block: 4,
            max_req_pages: 1024,
            batch_window: 32,
            session_poll: Duration::from_millis(25),
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_millis(200),
            retry_deadline: Duration::from_secs(2),
            retry_backoff: Duration::from_millis(5),
            failback_timeout: Duration::from_secs(1),
        }
    }
}

impl GatewayConfig {
    /// Deterministic test profile: unlimited admission (no shedding), tiny
    /// blocks to exercise run splitting, and a fast breaker so chaos tests
    /// observe failover/failback within a node test-profile outage.
    pub fn test_profile() -> Self {
        GatewayConfig {
            admission: AdmissionConfig::unlimited(),
            breaker_cooldown: Duration::from_millis(50),
            retry_deadline: Duration::from_secs(1),
            retry_backoff: Duration::from_millis(2),
            ..GatewayConfig::default()
        }
    }
}

/// Point-in-time snapshot of gateway activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GatewayStats {
    pub sessions_started: u64,
    pub sessions_ended: u64,
    /// Post-handshake requests received (admitted + shed + bad).
    pub requests: u64,
    pub admitted: u64,
    pub shed_total: u64,
    pub shed_rate_limited: u64,
    pub shed_queue_full: u64,
    pub bad_requests: u64,
    pub writes: u64,
    pub write_pages: u64,
    pub reads: u64,
    pub read_pages: u64,
    pub read_hits: u64,
    pub trims: u64,
    /// Pages covered by trim requests (partitions exactly over shards).
    pub trim_pages: u64,
    pub flushes: u64,
    /// Dirty pages destaged by flush requests, summed over every node the
    /// flush fanned out to.
    pub flushed_pages: u64,
    /// Write submissions to the node (one per batch window).
    pub batches: u64,
    /// Contiguous runs those batches decomposed into.
    pub runs: u64,
    /// Pages merged away by last-writer-wins coalescing.
    pub coalesced_pages: u64,
    /// Route flips away from a dead node (primary→secondary, plus
    /// emergency secondary→primary reroutes under a double fault).
    pub failovers: u64,
    /// Routes restored to a recovered primary after the pair re-formed.
    pub failbacks: u64,
    /// Shard-op retries after a `NodeDown` (backoff path, not counting
    /// the immediate retry a route flip grants).
    pub retries: u64,
    /// Shard ops abandoned at the retry deadline with both replicas down
    /// (one `Unavailable` reply may cover several batched writes).
    pub unavailable: u64,
    /// Elastic-membership windows opened (`begin_rebalance`).
    pub rebalances_started: u64,
    /// Windows committed (ring cut over to the new epoch).
    pub rebalances_completed: u64,
    /// Blocks handed from their old owner to their new one.
    pub rebalance_moved_blocks: u64,
    /// Pages those blocks carried.
    pub rebalance_moved_pages: u64,
    /// Migration batches executed (each one fence hold on the route table).
    pub rebalance_batches: u64,
    /// Requests currently in service.
    pub inflight: u32,
    /// High-water mark of concurrent admitted requests.
    pub max_inflight_seen: u32,
}

impl GatewayStats {
    /// Fraction of post-handshake requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.shed_total as f64 / self.requests as f64
        }
    }
}

/// Hot-path instruments. Swapped wholesale by [`Gateway::attach_obs`] —
/// attach before serving traffic so no increments land in the detached set.
struct Instruments {
    sessions_started: Counter,
    sessions_ended: Counter,
    requests: Counter,
    admitted: Counter,
    shed_total: Counter,
    shed_rate_limited: Counter,
    shed_queue_full: Counter,
    bad_requests: Counter,
    writes: Counter,
    write_pages: Counter,
    reads: Counter,
    read_pages: Counter,
    read_hits: Counter,
    trims: Counter,
    trim_pages: Counter,
    flushes: Counter,
    flushed_pages: Counter,
    batches: Counter,
    runs: Counter,
    coalesced_pages: Counter,
    failovers: Counter,
    failbacks: Counter,
    retries: Counter,
    unavailable: Counter,
    rebalances_started: Counter,
    rebalances_completed: Counter,
    rebalance_moved_blocks: Counter,
    rebalance_moved_pages: Counter,
    rebalance_batches: Counter,
    inflight_gauge: Gauge,
    latency_ns: Histogram,
    /// Moved-block count per committed rebalance window.
    rebalance_hist: Histogram,
    obs: Option<Obs>,
}

impl Instruments {
    fn detached() -> Instruments {
        Instruments {
            sessions_started: Counter::new(),
            sessions_ended: Counter::new(),
            requests: Counter::new(),
            admitted: Counter::new(),
            shed_total: Counter::new(),
            shed_rate_limited: Counter::new(),
            shed_queue_full: Counter::new(),
            bad_requests: Counter::new(),
            writes: Counter::new(),
            write_pages: Counter::new(),
            reads: Counter::new(),
            read_pages: Counter::new(),
            read_hits: Counter::new(),
            trims: Counter::new(),
            trim_pages: Counter::new(),
            flushes: Counter::new(),
            flushed_pages: Counter::new(),
            batches: Counter::new(),
            runs: Counter::new(),
            coalesced_pages: Counter::new(),
            failovers: Counter::new(),
            failbacks: Counter::new(),
            retries: Counter::new(),
            unavailable: Counter::new(),
            rebalances_started: Counter::new(),
            rebalances_completed: Counter::new(),
            rebalance_moved_blocks: Counter::new(),
            rebalance_moved_pages: Counter::new(),
            rebalance_batches: Counter::new(),
            inflight_gauge: Gauge::new(),
            latency_ns: Histogram::new(),
            rebalance_hist: Histogram::new(),
            obs: None,
        }
    }

    fn event(&self, kind: &'static str) -> Option<fc_obs::Event> {
        self.obs.as_ref().map(|o| o.wall_event("gateway", kind))
    }

    fn emit(&self, ev: Option<fc_obs::Event>) {
        if let (Some(obs), Some(ev)) = (self.obs.as_ref(), ev) {
            obs.emit(ev);
        }
    }
}

/// One shard's pair as the gateway routes to it: the designated primary,
/// optionally the pair's secondary (failover target), and the health /
/// route state. Ops take the health read lock for the duration of the
/// node call; failover and failback take the write lock, so a route flip
/// (and the failback flush barrier) never interleaves with an op on the
/// old route.
pub(crate) struct ShardBackend {
    pub(crate) primary: Arc<Node>,
    /// The pair's B-side, when the gateway is allowed to fail over to it.
    /// `None` preserves the pre-failover behavior (route pinned to the
    /// primary; a dead primary means the shard is just down).
    pub(crate) secondary: Option<Arc<Node>>,
    health: RwLock<ShardHealth>,
}

impl ShardBackend {
    /// The node the current route points at. With no secondary the route
    /// can only be the primary.
    fn active<'a>(&'a self, health: &ShardHealth) -> &'a Arc<Node> {
        match health.active {
            Replica::Primary => &self.primary,
            Replica::Secondary => self.secondary.as_ref().unwrap_or(&self.primary),
        }
    }
}

/// Sharded-mode routing state: the attached shard slots, the ring(s), and
/// — while an elastic-membership window is open — the fence set.
///
/// Ops hold the read half of the guarding `RwLock` across their node
/// calls; `attach_shard` / `begin_rebalance` / `migrate_batch` /
/// `commit_rebalance` take the write half. That makes every migration
/// batch a barrier: a block's copy+release never interleaves with a
/// client op routed by the pre-batch table, and once the batch's write
/// guard drops, every subsequent op sees the block at its new owner —
/// the "briefly held writes" of the dual-ring window. Lock order is
/// route table → shard health; nothing acquires them the other way.
pub(crate) struct RouteTable {
    /// The ring requests route by outside the fence set: epoch E+1 during
    /// a window, the only ring otherwise.
    ring: Ring,
    /// The retiring ring (epoch E) while a window is open.
    old: Option<Ring>,
    /// Planned-but-not-yet-migrated blocks. These still route to their
    /// old-ring owner; everything else routes by `ring`, so a block first
    /// written *during* the window lands directly on its post-cut-over
    /// owner and no acked write is stranded at commit.
    pending: HashSet<u64>,
    /// Shard slots, index = pair id. Slots are append-only: a removed
    /// pair's slot stays (its counters freeze, routing simply never
    /// resolves to a non-member), so per-shard stats and the counter-sum
    /// identity survive membership changes.
    shards: Vec<Arc<ShardBackend>>,
    /// Blocks / pages / batches moved in the current window.
    window_moved_blocks: u64,
    window_moved_pages: u64,
    window_batches: u64,
}

impl RouteTable {
    fn new(ring: Ring, shards: Vec<Arc<ShardBackend>>) -> RouteTable {
        RouteTable {
            ring,
            old: None,
            pending: HashSet::new(),
            shards,
            window_moved_blocks: 0,
            window_moved_pages: 0,
            window_batches: 0,
        }
    }

    /// The dual-ring routing rule.
    fn owner_of_block(&self, block: u64) -> u16 {
        match &self.old {
            Some(old) if self.pending.contains(&block) => old.shard_of_block(block),
            _ => self.ring.shard_of_block(block),
        }
    }

    fn owner_of_lpn(&self, lpn: u64) -> u16 {
        self.owner_of_block(lpn / u64::from(self.ring.block_pages()))
    }

    /// Shards a flush must fan out to: the current members, plus — during
    /// a window — the retiring ring's members (a pair leaving the cluster
    /// still holds unmigrated dirty pages until the cut-over).
    fn flush_members(&self) -> Vec<u16> {
        let mut members: Vec<u16> = self.ring.members().to_vec();
        if let Some(old) = &self.old {
            members.extend_from_slice(old.members());
            members.sort_unstable();
            members.dedup();
        }
        members
    }
}

/// Where admitted requests go: one pair, or N pairs behind a consistent-
/// hash ring.
enum Backend {
    /// The original single-pair mode: every request hits this node.
    Single(Arc<Node>),
    /// Sharded mode: the route table maps logical blocks to shard slots
    /// and carries the elastic-membership window state.
    Sharded(Box<RwLock<RouteTable>>),
}

/// A running gateway. Create with [`Gateway::new`] (one pair) or
/// [`Gateway::new_sharded`] (N pairs behind a ring; usually via
/// [`crate::ShardedGateway`]), connect clients with
/// [`Gateway::connect_mem`] or [`Gateway::listen_tcp`] +
/// [`GatewayClient::connect_tcp`](crate::GatewayClient::connect_tcp).
pub struct Gateway {
    cfg: GatewayConfig,
    backend: Backend,
    admission: Admission,
    instruments: Mutex<Arc<Instruments>>,
    /// One entry per shard (empty in single mode). Swapped wholesale by
    /// `attach_obs`, same discipline as `instruments`.
    shard_instruments: Mutex<Arc<Vec<ShardInstruments>>>,
    /// Commit guard for the counter-sum identity: every site that bumps a
    /// per-shard counter together with its aggregate twin holds this while
    /// doing both, and [`Gateway::stats_with_shards`] holds it across its
    /// combined snapshot — so Σ shard.* == gateway.* at *every* snapshot,
    /// not just at quiescence. Taken per run/segment (never per page) and
    /// strictly a leaf: no other lock is acquired while it is held.
    stats_commit: Mutex<()>,
    next_mem_client: AtomicU64,
    /// Deterministic decorrelation stream for retry-backoff jitter.
    jitter: AtomicU64,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
    sessions: Mutex<Vec<JoinHandle<()>>>,
    acceptors: Mutex<Vec<JoinHandle<()>>>,
}

impl Gateway {
    /// Wrap a node. The node keeps its own lifecycle (pump thread,
    /// replication); the gateway only adds the client-facing front end.
    pub fn new(cfg: GatewayConfig, node: Arc<Node>) -> Arc<Gateway> {
        Gateway::with_backend(cfg, Backend::Single(node), 0)
    }

    /// Front `nodes[i]` (pair i's primary) for ring shard `i`, with no
    /// failover targets: a dead primary leaves its shard down. The ring
    /// must contain exactly the pairs `0..nodes.len()` so every lookup
    /// resolves to a node.
    pub fn new_sharded(cfg: GatewayConfig, ring: Ring, nodes: Vec<Arc<Node>>) -> Arc<Gateway> {
        let n = nodes.len();
        Gateway::sharded_inner(cfg, ring, nodes, vec![None; n])
    }

    /// Like [`Gateway::new_sharded`], but the gateway also holds each
    /// pair's secondary and fails a shard's route over to it when the
    /// primary's circuit breaker opens (then back once the pair
    /// re-forms) — the front-door half of the FlashCoop failure story.
    pub fn new_sharded_with_secondaries(
        cfg: GatewayConfig,
        ring: Ring,
        primaries: Vec<Arc<Node>>,
        secondaries: Vec<Arc<Node>>,
    ) -> Arc<Gateway> {
        assert_eq!(
            primaries.len(),
            secondaries.len(),
            "every pair needs both nodes"
        );
        let secondaries = secondaries.into_iter().map(Some).collect();
        Gateway::sharded_inner(cfg, ring, primaries, secondaries)
    }

    fn sharded_inner(
        cfg: GatewayConfig,
        ring: Ring,
        primaries: Vec<Arc<Node>>,
        secondaries: Vec<Option<Arc<Node>>>,
    ) -> Arc<Gateway> {
        assert!(
            !primaries.is_empty(),
            "sharded gateway needs at least one pair"
        );
        let expected: Vec<u16> = (0..primaries.len() as u16).collect();
        assert_eq!(
            ring.pairs(),
            expected.as_slice(),
            "ring membership must be exactly 0..{}",
            primaries.len()
        );
        let shards: Vec<Arc<ShardBackend>> = primaries
            .into_iter()
            .zip(secondaries)
            .map(|(primary, secondary)| {
                Arc::new(ShardBackend {
                    primary,
                    secondary,
                    health: RwLock::new(ShardHealth::new(
                        cfg.breaker_threshold,
                        cfg.breaker_cooldown,
                    )),
                })
            })
            .collect();
        let count = shards.len();
        Gateway::with_backend(
            cfg,
            Backend::Sharded(Box::new(RwLock::new(RouteTable::new(ring, shards)))),
            count,
        )
    }

    fn with_backend(cfg: GatewayConfig, backend: Backend, shards: usize) -> Arc<Gateway> {
        Arc::new(Gateway {
            admission: Admission::new(cfg.admission),
            cfg,
            backend,
            instruments: Mutex::new(Arc::new(Instruments::detached())),
            shard_instruments: Mutex::new(Arc::new(
                (0..shards).map(|_| ShardInstruments::detached()).collect(),
            )),
            stats_commit: Mutex::new(()),
            next_mem_client: AtomicU64::new(1),
            jitter: AtomicU64::new(1),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
            sessions: Mutex::new(Vec::new()),
            acceptors: Mutex::new(Vec::new()),
        })
    }

    /// The node behind a single-pair gateway. Panics in sharded mode —
    /// there is no one node; use [`Gateway::shard_nodes`] or
    /// [`Gateway::read_page`].
    pub fn node(&self) -> &Arc<Node> {
        match &self.backend {
            Backend::Single(node) => node,
            Backend::Sharded { .. } => {
                panic!("Gateway::node() on a sharded gateway; use shard_nodes()/read_page()")
            }
        }
    }

    /// Every (designated) primary node behind this gateway — one entry in
    /// single mode, index = shard id in sharded mode. These are the
    /// configured primaries regardless of where each shard's route
    /// currently points.
    pub fn shard_nodes(&self) -> Vec<Arc<Node>> {
        match &self.backend {
            Backend::Single(node) => vec![node.clone()],
            Backend::Sharded(routes) => routes
                .read()
                .shards
                .iter()
                .map(|s| s.primary.clone())
                .collect(),
        }
    }

    /// Sharded-mode routing state for `shard`. Panics in single mode.
    pub(crate) fn shard_backend(&self, shard: u16) -> Arc<ShardBackend> {
        match &self.backend {
            Backend::Single(_) => panic!("shard_backend() on a single-pair gateway"),
            Backend::Sharded(routes) => routes.read().shards[usize::from(shard)].clone(),
        }
    }

    /// True while `shard`'s route points at its designated primary (1.0
    /// on the `gateway.shard.{i}.health` gauge). Single mode is always
    /// healthy by this definition.
    pub fn shard_routed_to_primary(&self, shard: u16) -> bool {
        match &self.backend {
            Backend::Single(_) => true,
            Backend::Sharded(routes) => {
                routes.read().shards[usize::from(shard)]
                    .health
                    .read()
                    .active
                    == Replica::Primary
            }
        }
    }

    /// A snapshot of the routing ring (sharded mode only). During a
    /// rebalance window this is the *target* ring (epoch E+1); blocks in
    /// the fence set still route to their old owner until migrated, so
    /// don't use the snapshot to second-guess in-window placement.
    pub fn ring(&self) -> Option<Ring> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(routes) => Some(routes.read().ring.clone()),
        }
    }

    /// The current ring epoch (sharded mode only) — the target ring's
    /// epoch during a window.
    pub fn ring_epoch(&self) -> Option<u64> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(routes) => Some(routes.read().ring.epoch()),
        }
    }

    /// True while an elastic-membership window is open.
    pub fn rebalance_active(&self) -> bool {
        match &self.backend {
            Backend::Single(_) => false,
            Backend::Sharded(routes) => routes.read().old.is_some(),
        }
    }

    /// Blocks still awaiting migration in the open window, if any.
    pub fn rebalance_pending(&self) -> Option<u64> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(routes) => {
                let rt = routes.read();
                rt.old.as_ref().map(|_| rt.pending.len() as u64)
            }
        }
    }

    /// The fenced blocks still awaiting migration, ascending — what a
    /// coordinator resuming an interrupted window must still move. Empty
    /// with no window open.
    pub fn rebalance_pending_blocks(&self) -> Vec<u64> {
        match &self.backend {
            Backend::Single(_) => Vec::new(),
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let mut blocks: Vec<u64> = rt.pending.iter().copied().collect();
                blocks.sort_unstable();
                blocks
            }
        }
    }

    /// Read one logical page through the router, without client
    /// attribution — the primitive behind state digests and scrub-style
    /// full-space sweeps.
    pub fn read_page(&self, lpn: u64) -> Option<Vec<u8>> {
        match &self.backend {
            Backend::Single(node) => node.read(lpn),
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let sb = &rt.shards[usize::from(rt.owner_of_lpn(lpn))];
                let health = sb.health.read();
                sb.active(&health).read(lpn)
            }
        }
    }

    // -- elastic membership ------------------------------------------------
    //
    // The control surface a rebalance coordinator drives (see the
    // `fc-rebalance` crate): attach new shard slots, open an epoch window,
    // migrate the fence set in bounded batches, cut over.

    /// Attach a new pair as the next shard slot and return its id. The
    /// slot is routable only once a later [`Gateway::begin_rebalance`]
    /// installs a ring that includes it, so attaching is invisible to
    /// clients. Sharded mode only.
    pub fn attach_shard(
        &self,
        primary: Arc<Node>,
        secondary: Option<Arc<Node>>,
    ) -> Result<u16, RebalanceError> {
        let Backend::Sharded(routes) = &self.backend else {
            return Err(RebalanceError::NotSharded);
        };
        let mut rt = routes.write();
        let shard = rt.shards.len() as u16;
        rt.shards.push(Arc::new(ShardBackend {
            primary,
            secondary,
            health: RwLock::new(ShardHealth::new(
                self.cfg.breaker_threshold,
                self.cfg.breaker_cooldown,
            )),
        }));
        // Grow the per-shard instrument vector under the route write guard:
        // any op that can route to the new shard acquires the read guard
        // later, and therefore snapshots the grown vector.
        let ins = self.instruments();
        let old_shards = self.shard_instruments.lock().clone();
        let mut next: Vec<ShardInstruments> = Vec::with_capacity(old_shards.len() + 1);
        let detached = ShardInstruments::detached();
        for (i, old) in old_shards
            .iter()
            .chain(std::iter::once(&detached))
            .enumerate()
        {
            next.push(match &ins.obs {
                Some(obs) => ShardInstruments::attached(obs.registry(), i, old),
                None => ShardInstruments::detached_from(old),
            });
        }
        *self.shard_instruments.lock() = Arc::new(next);
        ins.emit(
            ins.event("shard_attach")
                .map(|e| e.u64_field("shard", u64::from(shard))),
        );
        Ok(shard)
    }

    /// Open an elastic-membership window: install `new_ring` (epoch E+1)
    /// as the routing target and fence the moved-block set to its old
    /// owners until migrated. The fence is `pending` (the coordinator's
    /// plan) **unioned with a live occupancy scan of the retiring ring's
    /// members**, then restricted to blocks whose owner actually differs
    /// between the rings.
    ///
    /// The scan runs under the same route-table write guard that installs
    /// the new ring — no client op can be in flight while it runs — so a
    /// block first written *after* the coordinator planned (and therefore
    /// missing from `pending`) is still fenced here rather than silently
    /// flipping to a new owner that does not hold its pages. Returns the
    /// fenced set, ascending: exactly the blocks the caller must migrate
    /// before [`Gateway::commit_rebalance`] will succeed.
    pub fn begin_rebalance(
        &self,
        new_ring: Ring,
        pending: impl IntoIterator<Item = u64>,
    ) -> Result<Vec<u64>, RebalanceError> {
        let Backend::Sharded(routes) = &self.backend else {
            return Err(RebalanceError::NotSharded);
        };
        let mut rt = routes.write();
        if rt.old.is_some() {
            return Err(RebalanceError::WindowOpen);
        }
        if new_ring.config() != rt.ring.config() {
            return Err(RebalanceError::ConfigMismatch);
        }
        if new_ring.epoch() <= rt.ring.epoch() {
            return Err(RebalanceError::StaleEpoch {
                current: rt.ring.epoch(),
                offered: new_ring.epoch(),
            });
        }
        if let Some(&m) = new_ring
            .members()
            .iter()
            .find(|&&m| usize::from(m) >= rt.shards.len())
        {
            return Err(RebalanceError::UnknownMember(m));
        }
        // Live occupancy scan, atomic with the routing switch below. A
        // member that cannot answer aborts the begin with the table
        // untouched — fencing blindly would strand whatever it holds.
        let bp = u64::from(rt.ring.block_pages());
        let mut fence: HashSet<u64> = pending.into_iter().collect();
        for &m in rt.ring.members() {
            let sb = &rt.shards[usize::from(m)];
            let health = sb.health.read();
            let lpns = sb
                .active(&health)
                .try_migration_lpns()
                .map_err(|NodeDown| RebalanceError::SourceDown(m))?;
            fence.extend(lpns.iter().map(|l| l / bp).filter(|&b| {
                // Only blocks this member owns per the retiring ring; a
                // stray page parked off-owner is not this window's problem.
                rt.ring.shard_of_block(b) == m
            }));
        }
        let old = std::mem::replace(&mut rt.ring, new_ring);
        rt.pending = fence
            .into_iter()
            .filter(|&b| old.shard_of_block(b) != rt.ring.shard_of_block(b))
            .collect();
        let mut fenced_blocks: Vec<u64> = rt.pending.iter().copied().collect();
        fenced_blocks.sort_unstable();
        let (from_epoch, to_epoch, fenced) = (old.epoch(), rt.ring.epoch(), rt.pending.len());
        rt.old = Some(old);
        rt.window_moved_blocks = 0;
        rt.window_moved_pages = 0;
        rt.window_batches = 0;
        drop(rt);
        let ins = self.instruments();
        ins.rebalances_started.inc();
        ins.emit(ins.event("rebalance_begin").map(|e| {
            e.u64_field("from_epoch", from_epoch)
                .u64_field("to_epoch", to_epoch)
                .u64_field("fenced_blocks", fenced as u64)
        }));
        Ok(fenced_blocks)
    }

    /// Migrate one bounded batch of fenced blocks. For each block still
    /// pending, `copy(block, from, to)` must move its pages from the old
    /// owner to the new one (export → import → release) and return the
    /// page count; on success the block leaves the fence set, so the next
    /// op routes it to its new owner.
    ///
    /// The whole batch runs under the route-table write guard — client
    /// ops are briefly held, which is exactly the fence that makes the
    /// copy atomic against concurrent writes. Keep batches small; the
    /// guard hold is the rebalance/client latency trade-off. On a copy
    /// error the batch stops: already-moved blocks stay moved, the failed
    /// block (and the rest) stay fenced to their old owner, and the
    /// window remains open for a retry.
    pub fn migrate_batch(
        &self,
        blocks: &[u64],
        mut copy: impl FnMut(u64, u16, u16) -> Result<u64, MigrateError>,
    ) -> Result<u64, MigrateBatchError> {
        let Backend::Sharded(routes) = &self.backend else {
            return Err(MigrateBatchError::State(RebalanceError::NotSharded));
        };
        let ins = self.instruments();
        let mut rt = routes.write();
        if rt.old.is_none() {
            return Err(MigrateBatchError::State(RebalanceError::NoWindow));
        }
        let mut pages = 0u64;
        let mut moved = 0u64;
        for &block in blocks {
            if !rt.pending.contains(&block) {
                continue; // already moved, or never part of the plan
            }
            let from = rt.old.as_ref().unwrap().shard_of_block(block);
            let to = rt.ring.shard_of_block(block);
            match copy(block, from, to) {
                Ok(n) => {
                    rt.pending.remove(&block);
                    rt.window_moved_blocks += 1;
                    rt.window_moved_pages += n;
                    moved += 1;
                    pages += n;
                }
                Err(error) => {
                    rt.window_batches += 1;
                    ins.rebalance_batches.inc();
                    ins.rebalance_moved_blocks.add(moved);
                    ins.rebalance_moved_pages.add(pages);
                    return Err(MigrateBatchError::Copy {
                        block,
                        from,
                        to,
                        error,
                    });
                }
            }
        }
        rt.window_batches += 1;
        drop(rt);
        ins.rebalance_batches.inc();
        ins.rebalance_moved_blocks.add(moved);
        ins.rebalance_moved_pages.add(pages);
        Ok(pages)
    }

    /// Cut over: retire the old ring and route purely by the new epoch.
    /// Refused while fenced blocks remain — committing early would flip
    /// unmigrated blocks to an owner that does not hold them. Returns the
    /// new epoch.
    pub fn commit_rebalance(&self) -> Result<u64, RebalanceError> {
        let Backend::Sharded(routes) = &self.backend else {
            return Err(RebalanceError::NotSharded);
        };
        let mut rt = routes.write();
        let Some(old) = &rt.old else {
            return Err(RebalanceError::NoWindow);
        };
        if !rt.pending.is_empty() {
            return Err(RebalanceError::PendingBlocks(rt.pending.len() as u64));
        }
        let from_epoch = old.epoch();
        rt.old = None;
        let to_epoch = rt.ring.epoch();
        let (blocks, pages, batches) = (
            rt.window_moved_blocks,
            rt.window_moved_pages,
            rt.window_batches,
        );
        drop(rt);
        let ins = self.instruments();
        ins.rebalances_completed.inc();
        ins.rebalance_hist.record(blocks);
        ins.emit(ins.event("rebalance_commit").map(|e| {
            e.u64_field("from_epoch", from_epoch)
                .u64_field("to_epoch", to_epoch)
                .u64_field("moved_blocks", blocks)
                .u64_field("moved_pages", pages)
                .u64_field("batches", batches)
        }));
        Ok(to_epoch)
    }

    /// Per-shard traffic snapshots, index = shard id. Empty for a
    /// single-pair gateway.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        let shard_ins = self.shard_instruments.lock().clone();
        shard_ins
            .iter()
            .enumerate()
            .map(|(i, ins)| ins.stats(i as u16))
            .collect()
    }

    /// Register `gateway.*` metrics (counters seeded with current values,
    /// the `gateway.inflight` gauge, the `gateway.latency_ns` histogram)
    /// and start emitting wall-stamped `gateway` events (`session_start` /
    /// `session_end` / `shed` / `bad_request` / `flush`). Attach *before*
    /// serving traffic: histogram samples recorded earlier are not carried
    /// over.
    pub fn attach_obs(&self, obs: &Obs) {
        let reg = obs.registry();
        let old = self.instruments.lock().clone();
        let seed = |name: &str, from: &Counter| {
            let c = reg.counter(name);
            c.store(from.get());
            c
        };
        let next = Instruments {
            sessions_started: seed("gateway.sessions_started", &old.sessions_started),
            sessions_ended: seed("gateway.sessions_ended", &old.sessions_ended),
            requests: seed("gateway.requests", &old.requests),
            admitted: seed("gateway.admitted", &old.admitted),
            shed_total: seed("gateway.shed_total", &old.shed_total),
            shed_rate_limited: seed("gateway.shed_rate_limited", &old.shed_rate_limited),
            shed_queue_full: seed("gateway.shed_queue_full", &old.shed_queue_full),
            bad_requests: seed("gateway.bad_requests", &old.bad_requests),
            writes: seed("gateway.writes", &old.writes),
            write_pages: seed("gateway.write_pages", &old.write_pages),
            reads: seed("gateway.reads", &old.reads),
            read_pages: seed("gateway.read_pages", &old.read_pages),
            read_hits: seed("gateway.read_hits", &old.read_hits),
            trims: seed("gateway.trims", &old.trims),
            trim_pages: seed("gateway.trim_pages", &old.trim_pages),
            flushes: seed("gateway.flushes", &old.flushes),
            flushed_pages: seed("gateway.flushed_pages", &old.flushed_pages),
            batches: seed("gateway.batches", &old.batches),
            runs: seed("gateway.runs", &old.runs),
            coalesced_pages: seed("gateway.coalesced_pages", &old.coalesced_pages),
            failovers: seed("gateway.failovers", &old.failovers),
            failbacks: seed("gateway.failbacks", &old.failbacks),
            retries: seed("gateway.retries", &old.retries),
            unavailable: seed("gateway.unavailable", &old.unavailable),
            rebalances_started: seed("gateway.rebalance.started", &old.rebalances_started),
            rebalances_completed: seed("gateway.rebalance.completed", &old.rebalances_completed),
            rebalance_moved_blocks: seed(
                "gateway.rebalance.moved_blocks",
                &old.rebalance_moved_blocks,
            ),
            rebalance_moved_pages: seed(
                "gateway.rebalance.moved_pages",
                &old.rebalance_moved_pages,
            ),
            rebalance_batches: seed("gateway.rebalance.batches", &old.rebalance_batches),
            inflight_gauge: reg.gauge("gateway.inflight"),
            latency_ns: reg.histogram("gateway.latency_ns"),
            rebalance_hist: reg.histogram("gateway.rebalance.run_moved_blocks"),
            obs: Some(obs.clone()),
        };
        *self.instruments.lock() = Arc::new(next);

        // Per-shard twins under `gateway.shard.{i}.*` (sharded mode only).
        let old_shards = self.shard_instruments.lock().clone();
        let next_shards: Vec<ShardInstruments> = old_shards
            .iter()
            .enumerate()
            .map(|(i, old)| ShardInstruments::attached(reg, i, old))
            .collect();
        *self.shard_instruments.lock() = Arc::new(next_shards);
    }

    fn instruments(&self) -> Arc<Instruments> {
        self.instruments.lock().clone()
    }

    fn shard_instruments(&self) -> Arc<Vec<ShardInstruments>> {
        self.shard_instruments.lock().clone()
    }

    /// Monotonic nanoseconds since gateway start — the admission clock.
    fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Snapshot of gateway activity.
    pub fn stats(&self) -> GatewayStats {
        self.stats_of(&self.instruments())
    }

    fn stats_of(&self, ins: &Instruments) -> GatewayStats {
        GatewayStats {
            sessions_started: ins.sessions_started.get(),
            sessions_ended: ins.sessions_ended.get(),
            requests: ins.requests.get(),
            admitted: ins.admitted.get(),
            shed_total: ins.shed_total.get(),
            shed_rate_limited: ins.shed_rate_limited.get(),
            shed_queue_full: ins.shed_queue_full.get(),
            bad_requests: ins.bad_requests.get(),
            writes: ins.writes.get(),
            write_pages: ins.write_pages.get(),
            reads: ins.reads.get(),
            read_pages: ins.read_pages.get(),
            read_hits: ins.read_hits.get(),
            trims: ins.trims.get(),
            trim_pages: ins.trim_pages.get(),
            flushes: ins.flushes.get(),
            flushed_pages: ins.flushed_pages.get(),
            batches: ins.batches.get(),
            runs: ins.runs.get(),
            coalesced_pages: ins.coalesced_pages.get(),
            failovers: ins.failovers.get(),
            failbacks: ins.failbacks.get(),
            retries: ins.retries.get(),
            unavailable: ins.unavailable.get(),
            rebalances_started: ins.rebalances_started.get(),
            rebalances_completed: ins.rebalances_completed.get(),
            rebalance_moved_blocks: ins.rebalance_moved_blocks.get(),
            rebalance_moved_pages: ins.rebalance_moved_pages.get(),
            rebalance_batches: ins.rebalance_batches.get(),
            inflight: self.admission.inflight(),
            max_inflight_seen: self.admission.max_inflight_seen(),
        }
    }

    /// Atomic combined snapshot: aggregate stats and per-shard stats read
    /// under the stats-commit guard, so the counter-sum identity
    /// ([`crate::ShardStatsSum::matches`]) holds *at this snapshot* even
    /// while writers are mid-flight. Separate [`Gateway::stats`] /
    /// [`Gateway::shard_stats`] calls only promise the identity at
    /// quiescence.
    pub fn stats_with_shards(&self) -> (GatewayStats, Vec<ShardStats>) {
        let ins = self.instruments();
        let shard_ins = self.shard_instruments();
        let _c = self.stats_commit.lock();
        let shards = shard_ins
            .iter()
            .enumerate()
            .map(|(i, s)| s.stats(i as u16))
            .collect();
        (self.stats_of(&ins), shards)
    }

    /// Jittered exponential backoff for attempt `n` of a shard-op retry.
    /// The jitter stream is a hashed global counter — deterministic per
    /// process, decorrelated across racing sessions, no RNG dependency.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.cfg.retry_backoff.max(Duration::from_micros(100));
        let capped = base
            .saturating_mul(1 << attempt.min(5))
            .min(Duration::from_millis(100));
        let n = self.jitter.fetch_add(1, Ordering::Relaxed);
        let h = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let jitter_ns = h % (capped.as_nanos() as u64 / 2 + 1);
        capped + Duration::from_nanos(jitter_ns)
    }

    /// Run `op` against `shard`'s active replica, retrying with backoff
    /// and failing the route over/back as health dictates, until the
    /// retry deadline. The health read lock is held across the node call
    /// so a failback cutover (write lock) never interleaves with an op on
    /// the old route.
    fn with_shard<T>(
        &self,
        shard: u16,
        sb: &ShardBackend,
        ins: &Instruments,
        shard_ins: &ShardInstruments,
        op: impl Fn(&Node) -> Result<T, NodeDown>,
    ) -> Result<T, Unavail> {
        let deadline = Instant::now() + self.cfg.retry_deadline;
        let mut attempt: u32 = 0;
        loop {
            self.maybe_failback(shard, sb, ins, shard_ins);
            let health = sb.health.read();
            let route = health.active;
            match op(sb.active(&health)) {
                Ok(v) => {
                    let close = route == Replica::Primary && health.breaker.needs_success();
                    drop(health);
                    if close {
                        sb.health.write().breaker.on_success();
                        shard_ins.health.set(1.0);
                    }
                    return Ok(v);
                }
                Err(NodeDown) => {
                    drop(health);
                    let now = Instant::now();
                    if self.note_shard_error(shard, sb, route, ins, shard_ins, now) {
                        // The route flipped to a surviving replica: retry
                        // immediately, no backoff.
                        continue;
                    }
                    if now >= deadline {
                        {
                            let _c = self.stats_commit.lock();
                            ins.unavailable.inc();
                            shard_ins.unavailable.inc();
                        }
                        ins.emit(
                            ins.event("unavailable")
                                .map(|e| e.u64_field("shard", u64::from(shard))),
                        );
                        let retry_after_ms = sb.health.read().breaker.retry_after_ms();
                        return Err(Unavail { retry_after_ms });
                    }
                    {
                        let _c = self.stats_commit.lock();
                        ins.retries.inc();
                        shard_ins.retries.inc();
                    }
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                }
            }
        }
    }

    /// Record a `NodeDown` observed on `route` and flip the shard's route
    /// if health now dictates it. Returns true when the route no longer
    /// points where the failed op went (caller should retry immediately).
    fn note_shard_error(
        &self,
        shard: u16,
        sb: &ShardBackend,
        route: Replica,
        ins: &Instruments,
        shard_ins: &ShardInstruments,
        now: Instant,
    ) -> bool {
        let mut h = sb.health.write();
        match route {
            Replica::Primary => {
                let _tripped = h.breaker.on_error(now);
                if h.breaker.state() == BreakerState::Open
                    && h.active == Replica::Primary
                    && sb.secondary.is_some()
                {
                    h.active = Replica::Secondary;
                    {
                        let _c = self.stats_commit.lock();
                        ins.failovers.inc();
                        shard_ins.failovers.inc();
                    }
                    shard_ins.health.set(0.0);
                    ins.emit(ins.event("failover").map(|e| {
                        e.u64_field("shard", u64::from(shard))
                            .str_field("to", "secondary")
                    }));
                }
            }
            Replica::Secondary => {
                // The secondary died under us. If the primary is back,
                // reroute immediately — this emergency path skips the
                // recover/flush cutover barrier (the double fault already
                // cost the secondary's un-destaged state).
                if h.active == Replica::Secondary && !sb.primary.is_halted() {
                    h.active = Replica::Primary;
                    h.breaker.on_success();
                    {
                        let _c = self.stats_commit.lock();
                        ins.failovers.inc();
                        shard_ins.failovers.inc();
                    }
                    shard_ins.health.set(1.0);
                    ins.emit(ins.event("failover").map(|e| {
                        e.u64_field("shard", u64::from(shard))
                            .str_field("to", "primary")
                    }));
                }
            }
        }
        h.active != route
    }

    /// If `shard` is failed over, its failback probe is due, and the pair
    /// has re-formed, cut the route back to the primary: replay the
    /// secondary's replicated snapshot into the primary
    /// (`recover_from_peer`), flush the secondary's dirty pages (so every
    /// write acked through it during and after the outage is readable via
    /// the shared durable backend), then flip. The whole cutover runs
    /// under the health write lock, barring shard ops until it completes.
    fn maybe_failback(
        &self,
        shard: u16,
        sb: &ShardBackend,
        ins: &Instruments,
        shard_ins: &ShardInstruments,
    ) {
        let Some(secondary) = sb.secondary.as_ref() else {
            return;
        };
        {
            let h = sb.health.read();
            if h.active != Replica::Secondary || !h.breaker.probe_due(Instant::now()) {
                return;
            }
        }
        if sb.primary.is_halted() {
            return; // probe stays armed; re-checked on the next op
        }
        let mut h = sb.health.write();
        if h.active != Replica::Secondary || !h.breaker.try_probe(Instant::now()) {
            return; // lost the race; another session owns the probe
        }
        let ready = !sb.primary.is_halted()
            && sb.primary.lifecycle_state() == PairState::Paired
            && secondary.lifecycle_state() == PairState::Paired;
        if !ready
            || sb
                .primary
                .recover_from_peer(self.cfg.failback_timeout)
                .is_err()
            || secondary.try_flush_dirty().is_err()
        {
            // Re-open and re-arm the probe timer.
            h.breaker.on_error(Instant::now());
            return;
        }
        h.active = Replica::Primary;
        h.breaker.on_success();
        {
            let _c = self.stats_commit.lock();
            ins.failbacks.inc();
            shard_ins.failbacks.inc();
        }
        shard_ins.health.set(1.0);
        ins.emit(
            ins.event("failback")
                .map(|e| e.u64_field("shard", u64::from(shard))),
        );
    }

    /// Read `[lpn, lpn+pages)` through the router. Returns the page
    /// payloads (present/absent) and the hit count, or [`Unavail`] when a
    /// touched shard stayed down past the retry deadline (pages from
    /// segments already served are counted but not returned). In sharded
    /// mode the span is walked as contiguous same-shard segments, each
    /// counted and timed against its shard's `gateway.shard.*`
    /// instruments at the same points as the aggregate counters — a read
    /// straddling a shard boundary touches every owning pair.
    fn do_read(
        &self,
        client: u64,
        lpn: u64,
        pages: u32,
        ins: &Instruments,
    ) -> Result<(Vec<Option<Bytes>>, u64), Unavail> {
        let mut out = Vec::with_capacity(pages as usize);
        let mut hits = 0u64;
        match &self.backend {
            Backend::Single(node) => {
                for i in 0..u64::from(pages) {
                    match node.read_from(client, lpn + i) {
                        Some(data) => {
                            hits += 1;
                            out.push(Some(Bytes::from(data)));
                        }
                        None => out.push(None),
                    }
                }
                ins.read_pages.add(u64::from(pages));
                ins.read_hits.add(hits);
            }
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let shard_ins = self.shard_instruments();
                for (shard, start, count) in segments(|l| rt.owner_of_lpn(l), lpn, pages) {
                    let sb = rt.shards[usize::from(shard)].as_ref();
                    let sins = &shard_ins[usize::from(shard)];
                    let started = Instant::now();
                    let (seg, seg_hits) = self.with_shard(shard, sb, ins, sins, |node| {
                        let mut seg = Vec::with_capacity(count as usize);
                        let mut h = 0u64;
                        for i in 0..u64::from(count) {
                            match node.try_read_from(client, start + i)? {
                                Some(data) => {
                                    h += 1;
                                    seg.push(Some(Bytes::from(data)));
                                }
                                None => seg.push(None),
                            }
                        }
                        Ok((seg, h))
                    })?;
                    out.extend(seg);
                    sins.ops.inc();
                    {
                        let _c = self.stats_commit.lock();
                        ins.read_pages.add(u64::from(count));
                        sins.read_pages.add(u64::from(count));
                        ins.read_hits.add(seg_hits);
                        sins.read_hits.add(seg_hits);
                    }
                    sins.latency_ns.record(started.elapsed().as_nanos() as u64);
                    hits += seg_hits;
                }
            }
        }
        Ok((out, hits))
    }

    /// Trim `[lpn, lpn+pages)` through the router, segment-counted per
    /// shard like [`Gateway::do_read`].
    fn do_trim(&self, client: u64, lpn: u64, pages: u32, ins: &Instruments) -> Result<(), Unavail> {
        match &self.backend {
            Backend::Single(node) => {
                for i in 0..u64::from(pages) {
                    node.delete_from(client, lpn + i);
                }
                ins.trim_pages.add(u64::from(pages));
            }
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let shard_ins = self.shard_instruments();
                for (shard, start, count) in segments(|l| rt.owner_of_lpn(l), lpn, pages) {
                    let sb = rt.shards[usize::from(shard)].as_ref();
                    let sins = &shard_ins[usize::from(shard)];
                    let started = Instant::now();
                    self.with_shard(shard, sb, ins, sins, |node| {
                        for i in 0..u64::from(count) {
                            node.try_delete_from(client, start + i)?;
                        }
                        Ok(())
                    })?;
                    sins.ops.inc();
                    {
                        let _c = self.stats_commit.lock();
                        ins.trim_pages.add(u64::from(count));
                        sins.trim_pages.add(u64::from(count));
                    }
                    sins.latency_ns.record(started.elapsed().as_nanos() as u64);
                }
            }
        }
        Ok(())
    }

    /// Flush dirty pages: one node in single mode, fanned out to every
    /// ring member's active replica in sharded mode (during a rebalance
    /// window: the union of old and new members, since a retiring pair
    /// still holds unmigrated dirty pages). Returns total pages destaged,
    /// or [`Unavail`] when some pair is entirely down (pages flushed on
    /// earlier shards stay flushed and counted).
    ///
    /// Shards that provably cannot serve — breaker Open, active replica
    /// halted, and no live replica to flip to — are skipped up front
    /// instead of each burning the full retry deadline; the flush still
    /// walks every serviceable shard, then answers `Unavailable` with the
    /// shortest `retry_after_ms` among the dead ones.
    fn do_flush(&self, ins: &Instruments) -> Result<u64, Unavail> {
        match &self.backend {
            Backend::Single(node) => {
                let flushed = node.flush_dirty();
                ins.flushed_pages.add(flushed);
                Ok(flushed)
            }
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let shard_ins = self.shard_instruments();
                let mut total = 0u64;
                // (shard, hint) of the fastest-retry dead shard, if any.
                let mut dead: Option<(u16, u32)> = None;
                for shard in rt.flush_members() {
                    let sb = rt.shards[usize::from(shard)].as_ref();
                    let sins = &shard_ins[usize::from(shard)];
                    let skip = {
                        let h = sb.health.read();
                        let alt_alive = match h.active {
                            Replica::Primary => {
                                sb.secondary.as_ref().is_some_and(|s| !s.is_halted())
                            }
                            Replica::Secondary => !sb.primary.is_halted(),
                        };
                        (h.breaker.state() == BreakerState::Open
                            && sb.active(&h).is_halted()
                            && !alt_alive)
                            .then(|| h.breaker.retry_after_ms())
                    };
                    if let Some(hint) = skip {
                        if dead.is_none_or(|(_, best)| hint < best) {
                            dead = Some((shard, hint));
                        }
                        continue;
                    }
                    let started = Instant::now();
                    let flushed = match self
                        .with_shard(shard, sb, ins, sins, |node| node.try_flush_dirty())
                    {
                        Ok(f) => f,
                        Err(u) => {
                            // Deadline burned here anyway; fold in any
                            // faster hint from an already-skipped shard.
                            let retry_after_ms =
                                dead.map_or(u.retry_after_ms, |(_, h)| h.min(u.retry_after_ms));
                            return Err(Unavail { retry_after_ms });
                        }
                    };
                    sins.ops.inc();
                    {
                        let _c = self.stats_commit.lock();
                        ins.flushed_pages.add(flushed);
                        sins.flushed_pages.add(flushed);
                    }
                    sins.latency_ns.record(started.elapsed().as_nanos() as u64);
                    total += flushed;
                }
                if let Some((shard, retry_after_ms)) = dead {
                    {
                        let _c = self.stats_commit.lock();
                        ins.unavailable.inc();
                        shard_ins[usize::from(shard)].unavailable.inc();
                    }
                    ins.emit(
                        ins.event("unavailable")
                            .map(|e| e.u64_field("shard", u64::from(shard))),
                    );
                    return Err(Unavail { retry_after_ms });
                }
                Ok(total)
            }
        }
    }

    /// Coalesce one batch window's pages into runs and submit them. Runs
    /// never cross a logical-block boundary, and in sharded mode never a
    /// shard boundary either ([`coalesce_sharded`]) — each run goes whole
    /// to exactly one pair.
    ///
    /// `ids` maps each page's lpn to the request id that (last) wrote it;
    /// sharded runs are stamped with a tag derived from it, so a client
    /// resending the same write request after an ambiguous failure hits
    /// the node's dedup window instead of double-applying
    /// ([`Node::try_write_run`]). If a shard stays down past the retry
    /// deadline, submission stops and `unavailable` is set — pages and
    /// runs already applied stay applied (and counted), and the caller
    /// answers *every* write in the batch with `Unavailable`, which is
    /// safe precisely because the dedup tags make the client's resend of
    /// the already-applied runs idempotent.
    fn submit_writes(
        &self,
        client: u64,
        flat: Vec<(u64, Bytes)>,
        ids: &HashMap<u64, u64>,
        ins: &Instruments,
    ) -> Submission {
        let mut sub = Submission::default();
        match &self.backend {
            Backend::Single(node) => {
                let in_pages = flat.len() as u64;
                let runs: Vec<WriteRun> = coalesce(flat, self.cfg.pages_per_block);
                for run in &runs {
                    sub.out_pages += run.len() as u64;
                    sub.replicated += node.write_run(client, run.lpn, &run.pages).replicated;
                }
                sub.runs = runs.len() as u64;
                ins.write_pages.add(in_pages);
                ins.runs.add(sub.runs);
                ins.coalesced_pages.add(in_pages - sub.out_pages);
            }
            Backend::Sharded(routes) => {
                let rt = routes.read();
                let shard_ins = self.shard_instruments();
                // Remember each incoming page's lpn so its pre-coalesce
                // count can be attributed to the run (and shard) that
                // absorbed it — page counters only move for runs that
                // actually submit, keeping the counter-sum identity exact
                // even when a batch aborts midway.
                let in_lpns: Vec<u64> = flat.iter().map(|(lpn, _)| *lpn).collect();
                let tagged =
                    coalesce_sharded(flat, self.cfg.pages_per_block, |lpn| rt.owner_of_lpn(lpn));
                // Runs come out in ascending lpn order; bucket each input
                // page into the run covering its lpn.
                let mut in_count = vec![0u64; tagged.len()];
                for lpn in &in_lpns {
                    let idx = tagged.partition_point(|(_, r)| r.lpn <= *lpn) - 1;
                    debug_assert!(*lpn < tagged[idx].1.lpn + tagged[idx].1.len() as u64);
                    in_count[idx] += 1;
                }
                for (i, (shard, run)) in tagged.iter().enumerate() {
                    let sb = rt.shards[usize::from(*shard)].as_ref();
                    let sins = &shard_ins[usize::from(*shard)];
                    let started = Instant::now();
                    // Stable across resends of the same request; mixed so
                    // ids from different clients' id spaces don't collide
                    // within one window.
                    let tag = ids[&run.lpn].wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ run.lpn;
                    match self.with_shard(*shard, sb, ins, sins, |node| {
                        node.try_write_run(client, tag, run.lpn, &run.pages)
                    }) {
                        Ok(outcome) => {
                            let out_n = run.len() as u64;
                            let in_n = in_count[i];
                            sins.ops.inc();
                            {
                                let _c = self.stats_commit.lock();
                                ins.runs.inc();
                                sins.runs.inc();
                                ins.write_pages.add(in_n);
                                sins.write_pages.add(in_n);
                                ins.coalesced_pages.add(in_n - out_n);
                                sins.coalesced_pages.add(in_n - out_n);
                            }
                            sins.latency_ns.record(started.elapsed().as_nanos() as u64);
                            sub.out_pages += out_n;
                            sub.runs += 1;
                            // A dedup-cached outcome may describe a run
                            // composed differently on the first attempt.
                            sub.replicated += outcome.replicated.min(out_n);
                        }
                        Err(u) => {
                            sub.unavailable = Some(u.retry_after_ms);
                            break;
                        }
                    }
                }
            }
        }
        sub
    }

    /// Serve one session on its own thread.
    pub fn serve(self: &Arc<Self>, link: impl SessionLink + 'static) {
        let gw = self.clone();
        let handle = std::thread::Builder::new()
            .name("fc-gw-session".into())
            .spawn(move || session_loop(gw, Box::new(link)))
            .expect("spawn gateway session");
        self.sessions.lock().push(handle);
    }

    /// Connect an in-memory client: builds a channel pair, serves the
    /// gateway half, returns a ready (pre-Hello) client for the other.
    pub fn connect_mem(self: &Arc<Self>) -> GatewayClient {
        let id = self.next_mem_client.fetch_add(1, Ordering::Relaxed);
        self.connect_mem_as(id)
    }

    /// Like [`Gateway::connect_mem`] with a caller-chosen client id.
    pub fn connect_mem_as(self: &Arc<Self>, client_id: u64) -> GatewayClient {
        let (client_half, server_half) = mem_session();
        self.serve(server_half);
        GatewayClient::from_mem(client_half, client_id)
    }

    /// Listen for TCP clients; returns the bound address (pass
    /// `"127.0.0.1:0"` for an ephemeral port).
    pub fn listen_tcp(self: &Arc<Self>, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let listener = std::net::TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let gw = self.clone();
        let handle = std::thread::Builder::new()
            .name("fc-gw-accept".into())
            .spawn(move || {
                while !gw.shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _peer)) => {
                            stream.set_nonblocking(false).ok();
                            match TcpSessionLink::new(stream) {
                                Ok(link) => gw.serve(link),
                                Err(_) => continue,
                            }
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn gateway acceptor");
        self.acceptors.lock().push(handle);
        Ok(local)
    }

    /// Stop accepting, wind down session threads, and join them. Clients
    /// observe `Disconnected` afterwards.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for h in self.acceptors.lock().drain(..) {
            let _ = h.join();
        }
        for h in self.sessions.lock().drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A shard op gave up at the retry deadline with no replica answering.
#[derive(Debug, Clone, Copy)]
struct Unavail {
    /// Backoff hint for the client (the breaker cooldown).
    retry_after_ms: u32,
}

/// Why an elastic-membership control call was refused. These are all
/// caller-state errors — the route table is left exactly as it was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RebalanceError {
    /// Single-pair gateway: there is no ring to rebalance.
    NotSharded,
    /// `begin_rebalance` while a window is already open.
    WindowOpen,
    /// `migrate_batch`/`commit_rebalance` with no window open.
    NoWindow,
    /// The offered ring disagrees on seed/vnodes/block geometry with the
    /// current one — its placements would be incomparable.
    ConfigMismatch,
    /// The offered ring's epoch is not ahead of the installed ring's —
    /// a stale or replayed membership change.
    StaleEpoch { current: u64, offered: u64 },
    /// The offered ring names a member with no attached shard slot.
    UnknownMember(u16),
    /// `commit_rebalance` refused: this many blocks are still fenced.
    PendingBlocks(u64),
    /// `begin_rebalance` could not scan this retiring member's occupancy
    /// (its active replica is down); fencing blindly would strand
    /// whatever it holds, so the window never opened.
    SourceDown(u16),
}

impl std::fmt::Display for RebalanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebalanceError::NotSharded => write!(f, "gateway is not sharded"),
            RebalanceError::WindowOpen => write!(f, "a rebalance window is already open"),
            RebalanceError::NoWindow => write!(f, "no rebalance window is open"),
            RebalanceError::ConfigMismatch => write!(f, "ring config mismatch"),
            RebalanceError::StaleEpoch { current, offered } => {
                write!(f, "stale ring epoch {offered} (current {current})")
            }
            RebalanceError::UnknownMember(m) => {
                write!(f, "ring member {m} has no attached shard")
            }
            RebalanceError::PendingBlocks(n) => {
                write!(f, "{n} blocks still awaiting migration")
            }
            RebalanceError::SourceDown(m) => {
                write!(f, "shard {m} is down; cannot scan its occupancy")
            }
        }
    }
}

impl std::error::Error for RebalanceError {}

/// Why [`Gateway::migrate_batch`] stopped.
#[derive(Debug)]
pub enum MigrateBatchError {
    /// Refused before any copy ran.
    State(RebalanceError),
    /// `copy` failed on `block`; it and the rest of the batch stay fenced
    /// to their old owner, and the window stays open for a retry.
    Copy {
        block: u64,
        from: u16,
        to: u16,
        error: MigrateError,
    },
}

impl std::fmt::Display for MigrateBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateBatchError::State(e) => write!(f, "{e}"),
            MigrateBatchError::Copy {
                block,
                from,
                to,
                error,
            } => write!(f, "migrating block {block} ({from} -> {to}): {error}"),
        }
    }
}

impl std::error::Error for MigrateBatchError {}

/// Outcome of one batch-window submission.
#[derive(Debug, Default)]
struct Submission {
    /// Post-coalesce pages actually submitted.
    out_pages: u64,
    /// Contiguous runs submitted.
    runs: u64,
    /// Pages the nodes reported replicated to their peers.
    replicated: u64,
    /// Set when submission aborted on an all-replicas-down shard: the
    /// `retry_after_ms` hint to answer the batch's writes with.
    unavailable: Option<u32>,
}

/// Walk `[lpn, lpn+pages)` as maximal contiguous same-shard segments:
/// `(shard, start, count)` triples in lpn order. `owner` is the routing
/// rule (the route table's dual-ring lookup); routing is per ring block,
/// so segments break exactly at owner changes.
fn segments(owner: impl Fn(u64) -> u16, lpn: u64, pages: u32) -> Vec<(u16, u64, u32)> {
    let mut segs: Vec<(u16, u64, u32)> = Vec::new();
    for i in 0..u64::from(pages) {
        let page = lpn + i;
        let shard = owner(page);
        match segs.last_mut() {
            Some((s, start, count)) if *s == shard && *start + u64::from(*count) == page => {
                *count += 1;
            }
            _ => segs.push((shard, page, 1)),
        }
    }
    segs
}

// ---------------------------------------------------------------------------
// Session loop
// ---------------------------------------------------------------------------

fn session_loop(gw: Arc<Gateway>, link: Box<dyn SessionLink>) {
    let ins = gw.instruments();
    ins.sessions_started.inc();
    ins.emit(ins.event("session_start"));

    let Some((client, version)) = handshake(&gw, link.as_ref()) else {
        ins.sessions_ended.inc();
        ins.emit(ins.event("session_end"));
        return;
    };

    let mut carried: Option<Request> = None;
    while !gw.shutdown.load(Ordering::SeqCst) {
        let req = match carried.take() {
            Some(r) => r,
            None => match link.recv_timeout(gw.cfg.session_poll) {
                Ok(Some(r)) => r,
                Ok(None) => continue,
                Err(_) => break,
            },
        };
        match handle_request(&gw, link.as_ref(), client, version, req) {
            Ok(next) => carried = next,
            Err(_) => break,
        }
    }

    let ins = gw.instruments();
    ins.sessions_ended.inc();
    ins.emit(
        ins.event("session_end")
            .map(|e| e.u64_field("client", client)),
    );
}

/// First message must be a supported-version Hello. Returns the client id
/// and the negotiated session version (the client's own, echoed back — a
/// v1 client never sees a v2-only reply tag), or `None` if the session
/// should be dropped.
fn handshake(gw: &Arc<Gateway>, link: &dyn SessionLink) -> Option<(u64, u16)> {
    let ins = gw.instruments();
    while !gw.shutdown.load(Ordering::SeqCst) {
        match link.recv_timeout(gw.cfg.session_poll) {
            Ok(Some(Request::Hello { version, client })) => {
                if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
                    ins.bad_requests.inc();
                    ins.emit(
                        ins.event("bad_request")
                            .map(|e| e.str_field("why", "version")),
                    );
                    let _ = link.send(Reply::Error {
                        id: 0,
                        code: ErrorCode::BadVersion,
                    });
                    return None;
                }
                let max_inflight = gw.admission.config().max_inflight;
                link.send(Reply::HelloOk {
                    version,
                    max_inflight,
                })
                .ok()?;
                return Some((client, version));
            }
            Ok(Some(other)) => {
                // I/O before Hello: refuse, keep waiting for the handshake.
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id: other.id(),
                    code: ErrorCode::BadRequest,
                })
                .ok()?;
            }
            Ok(None) => continue,
            Err(_) => return None,
        }
    }
    None
}

fn valid_page_count(gw: &Gateway, pages: u32) -> bool {
    pages >= 1 && pages <= gw.cfg.max_req_pages
}

/// Send `reply`, downgrading v2-only tags for older sessions: a v1 client
/// sees `Unavailable` as `Error { Busy }` — same retry semantics, no
/// unknown tag on its wire.
fn send_versioned(
    link: &dyn SessionLink,
    version: u16,
    reply: Reply,
) -> Result<(), crate::conn::LinkClosed> {
    let reply = match reply {
        Reply::Unavailable { id, .. } if version < 2 => Reply::Error {
            id,
            code: ErrorCode::Busy,
        },
        other => other,
    };
    link.send(reply)
}

/// Process one request (and, for writes, a drained batch of pipelined
/// writes behind it). Returns a non-write request drained out of the batch
/// window, which the caller must process next — preserving reply order.
fn handle_request(
    gw: &Arc<Gateway>,
    link: &dyn SessionLink,
    client: u64,
    version: u16,
    req: Request,
) -> Result<Option<Request>, crate::conn::LinkClosed> {
    let ins = gw.instruments();
    match req {
        Request::Hello { .. } => {
            // Duplicate handshake: harmless, re-ack.
            link.send(Reply::HelloOk {
                version,
                max_inflight: gw.admission.config().max_inflight,
            })?;
            Ok(None)
        }
        Request::Write { id, lpn, pages } => write_batch(gw, link, client, version, id, lpn, pages),
        Request::Read { id, lpn, pages } => {
            ins.requests.inc();
            if !valid_page_count(gw, pages) {
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id,
                    code: ErrorCode::BadRequest,
                })?;
                return Ok(None);
            }
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            let result = gw.do_read(client, lpn, pages, &ins);
            ins.reads.inc();
            finish(gw, &ins, permit, started);
            match result {
                Ok((out, _hits)) => {
                    send_versioned(link, version, Reply::ReadOk { id, pages: out })?
                }
                Err(u) => send_versioned(
                    link,
                    version,
                    Reply::Unavailable {
                        id,
                        retry_after_ms: u.retry_after_ms,
                    },
                )?,
            }
            Ok(None)
        }
        Request::Trim { id, lpn, pages } => {
            ins.requests.inc();
            if !valid_page_count(gw, pages) {
                ins.bad_requests.inc();
                link.send(Reply::Error {
                    id,
                    code: ErrorCode::BadRequest,
                })?;
                return Ok(None);
            }
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            let result = gw.do_trim(client, lpn, pages, &ins);
            ins.trims.inc();
            finish(gw, &ins, permit, started);
            match result {
                Ok(()) => send_versioned(link, version, Reply::TrimOk { id, pages })?,
                Err(u) => send_versioned(
                    link,
                    version,
                    Reply::Unavailable {
                        id,
                        retry_after_ms: u.retry_after_ms,
                    },
                )?,
            }
            Ok(None)
        }
        Request::Flush { id } => {
            ins.requests.inc();
            let Some(permit) = admit(gw, &ins, link, client, id)? else {
                return Ok(None);
            };
            let started = Instant::now();
            let result = gw.do_flush(&ins);
            ins.flushes.inc();
            finish(gw, &ins, permit, started);
            match result {
                Ok(flushed) => {
                    ins.emit(
                        ins.event("flush")
                            .map(|e| e.u64_field("client", client).u64_field("pages", flushed)),
                    );
                    send_versioned(link, version, Reply::FlushOk { id, flushed })?
                }
                Err(u) => send_versioned(
                    link,
                    version,
                    Reply::Unavailable {
                        id,
                        retry_after_ms: u.retry_after_ms,
                    },
                )?,
            }
            Ok(None)
        }
    }
}

/// Admission gate: `Ok(Some(permit))` admitted, `Ok(None)` shed (Busy sent).
fn admit(
    gw: &Gateway,
    ins: &Instruments,
    link: &dyn SessionLink,
    client: u64,
    id: u64,
) -> Result<Option<Permit>, crate::conn::LinkClosed> {
    match gw.admission.try_admit(client, gw.now_nanos()) {
        Ok(permit) => {
            ins.admitted.inc();
            ins.inflight_gauge
                .set_u64(u64::from(gw.admission.inflight()));
            Ok(Some(permit))
        }
        Err(reason) => {
            ins.shed_total.inc();
            match reason {
                ShedReason::RateLimited => ins.shed_rate_limited.inc(),
                ShedReason::QueueFull => ins.shed_queue_full.inc(),
            }
            ins.emit(ins.event("shed").map(|e| {
                e.u64_field("client", client)
                    .str_field("reason", reason.name())
            }));
            link.send(Reply::Error {
                id,
                code: ErrorCode::Busy,
            })?;
            Ok(None)
        }
    }
}

fn finish(gw: &Gateway, ins: &Instruments, permit: Permit, started: Instant) {
    ins.latency_ns.record(started.elapsed().as_nanos() as u64);
    drop(permit);
    ins.inflight_gauge
        .set_u64(u64::from(gw.admission.inflight()));
}

/// One write received in the current batch window, in receive order.
/// Replies are deferred and sent strictly in this order after submission —
/// the in-order reply guarantee clients correlate ids by.
enum BatchedWrite {
    Admitted {
        id: u64,
        pages: u32,
        _permit: Permit,
    },
    Shed {
        id: u64,
    },
    Bad {
        id: u64,
    },
}

/// Validate + admit the head write, drain up to `batch_window` pipelined
/// writes behind it (each individually validated and admitted), coalesce
/// the admitted ones into runs, submit, then reply to every batched write
/// in receive order. If submission aborts on an all-replicas-down shard,
/// every admitted write in the batch is answered `Unavailable` — a
/// conservative blanket (some runs may have applied) made safe by the
/// dedup tags: the client's resend of an already-applied run is a no-op.
fn write_batch(
    gw: &Arc<Gateway>,
    link: &dyn SessionLink,
    client: u64,
    version: u16,
    id: u64,
    lpn: u64,
    pages: Vec<Bytes>,
) -> Result<Option<Request>, crate::conn::LinkClosed> {
    let ins = gw.instruments();
    let started = Instant::now();
    let mut batch: Vec<BatchedWrite> = Vec::new();
    let mut flat: Vec<(u64, Bytes)> = Vec::new();
    // lpn → id of the (last) request that wrote it, mirroring coalesce's
    // last-writer-wins — the source of the per-run dedup tags.
    let mut ids: HashMap<u64, u64> = HashMap::new();
    let mut admitted = 0usize;
    let mut carried: Option<Request> = None;

    let consider = |req_id: u64,
                    req_lpn: u64,
                    req_pages: Vec<Bytes>,
                    batch: &mut Vec<BatchedWrite>,
                    flat: &mut Vec<(u64, Bytes)>,
                    ids: &mut HashMap<u64, u64>,
                    admitted: &mut usize| {
        ins.requests.inc();
        if req_pages.is_empty() || req_pages.len() as u32 > gw.cfg.max_req_pages {
            ins.bad_requests.inc();
            batch.push(BatchedWrite::Bad { id: req_id });
            return;
        }
        match gw.admission.try_admit(client, gw.now_nanos()) {
            Ok(permit) => {
                ins.admitted.inc();
                ins.inflight_gauge
                    .set_u64(u64::from(gw.admission.inflight()));
                let n = req_pages.len() as u32;
                for (i, data) in req_pages.into_iter().enumerate() {
                    flat.push((req_lpn + i as u64, data));
                    ids.insert(req_lpn + i as u64, req_id);
                }
                *admitted += 1;
                batch.push(BatchedWrite::Admitted {
                    id: req_id,
                    pages: n,
                    _permit: permit,
                });
            }
            Err(reason) => {
                ins.shed_total.inc();
                match reason {
                    ShedReason::RateLimited => ins.shed_rate_limited.inc(),
                    ShedReason::QueueFull => ins.shed_queue_full.inc(),
                }
                ins.emit(ins.event("shed").map(|e| {
                    e.u64_field("client", client)
                        .str_field("reason", reason.name())
                }));
                batch.push(BatchedWrite::Shed { id: req_id });
            }
        }
    };

    consider(
        id,
        lpn,
        pages,
        &mut batch,
        &mut flat,
        &mut ids,
        &mut admitted,
    );

    // Batch window: drain writes the client already pipelined. A non-write
    // is carried out to the caller so replies stay in receive order.
    while admitted <= gw.cfg.batch_window {
        match link.recv_timeout(Duration::ZERO) {
            Ok(Some(Request::Write { id, lpn, pages })) => {
                consider(
                    id,
                    lpn,
                    pages,
                    &mut batch,
                    &mut flat,
                    &mut ids,
                    &mut admitted,
                );
            }
            Ok(Some(other)) => {
                carried = Some(other);
                break;
            }
            Ok(None) => break,
            Err(_) => break, // reply to what we already took first
        }
    }

    let sub = gw.submit_writes(client, flat, &ids, &ins);
    let all_replicated = sub.replicated == sub.out_pages;

    if admitted > 0 {
        ins.writes.add(admitted as u64);
        ins.batches.inc();
        ins.latency_ns.record(started.elapsed().as_nanos() as u64);
    }

    for w in &batch {
        let reply = match w {
            BatchedWrite::Admitted { id, pages, .. } => match sub.unavailable {
                Some(retry_after_ms) => Reply::Unavailable {
                    id: *id,
                    retry_after_ms,
                },
                None => Reply::WriteOk {
                    id: *id,
                    pages: *pages,
                    replicated: all_replicated,
                },
            },
            BatchedWrite::Shed { id } => Reply::Error {
                id: *id,
                code: ErrorCode::Busy,
            },
            BatchedWrite::Bad { id } => Reply::Error {
                id: *id,
                code: ErrorCode::BadRequest,
            },
        };
        send_versioned(link, version, reply)?;
    }
    drop(batch); // releases every admitted permit
    ins.inflight_gauge
        .set_u64(u64::from(gw.admission.inflight()));
    Ok(carried)
}
