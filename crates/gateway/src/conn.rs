//! Session transports: how one client's requests reach the gateway.
//!
//! Mirrors `fc_cluster::transport`: a [`SessionLink`] is the gateway-side
//! view of one client connection, with an in-memory typed-channel
//! implementation for deterministic tests and a TCP implementation that
//! runs the real framed protocol from [`crate::proto`].
//!
//! The in-memory pair passes typed [`Request`]/[`Reply`] values without
//! re-framing (the encode/decode path is exercised by the TCP link and the
//! proto unit tests); that keeps the deterministic e2e variant free of
//! socket-scheduling noise.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::BytesMut;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::proto::{decode_request, encode_reply, Reply, Request};

/// The link died: peer hung up, socket error, or protocol corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

impl std::fmt::Display for LinkClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session link closed")
    }
}

impl std::error::Error for LinkClosed {}

/// Gateway-side handle for one client session.
pub trait SessionLink: Send {
    /// Send one reply to the client.
    fn send(&self, reply: Reply) -> Result<(), LinkClosed>;
    /// Receive the next request. `Ok(None)` on timeout with the link still
    /// up; `Err` once the client is gone.
    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Request>, LinkClosed>;
}

// ---------------------------------------------------------------------------
// In-memory link
// ---------------------------------------------------------------------------

/// Client half of an in-memory session: send requests, receive replies.
pub struct MemClientConn {
    pub(crate) tx: Sender<Request>,
    pub(crate) rx: Receiver<Reply>,
}

impl MemClientConn {
    /// Send one raw request (tests and custom clients; [`crate::GatewayClient`]
    /// wraps this with the blocking API).
    pub fn send(&self, req: Request) -> Result<(), LinkClosed> {
        self.tx.send(req).map_err(|_| LinkClosed)
    }

    /// Receive the next raw reply. `Ok(None)` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Reply>, LinkClosed> {
        match self.rx.recv_timeout(timeout) {
            Ok(reply) => Ok(Some(reply)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkClosed),
        }
    }
}

/// Gateway half of an in-memory session.
pub struct MemSessionLink {
    tx: Sender<Reply>,
    rx: Receiver<Request>,
}

/// Build a connected in-memory session: `(client half, gateway half)`.
pub fn mem_session() -> (MemClientConn, MemSessionLink) {
    let (req_tx, req_rx) = unbounded();
    let (reply_tx, reply_rx) = unbounded();
    (
        MemClientConn {
            tx: req_tx,
            rx: reply_rx,
        },
        MemSessionLink {
            tx: reply_tx,
            rx: req_rx,
        },
    )
}

impl SessionLink for MemSessionLink {
    fn send(&self, reply: Reply) -> Result<(), LinkClosed> {
        self.tx.send(reply).map_err(|_| LinkClosed)
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Request>, LinkClosed> {
        match self.rx.recv_timeout(timeout) {
            Ok(req) => Ok(Some(req)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(LinkClosed),
        }
    }
}

// ---------------------------------------------------------------------------
// TCP link
// ---------------------------------------------------------------------------

/// Gateway-side TCP session: a reader thread decodes framed requests into
/// a channel; replies are encoded and written inline.
pub struct TcpSessionLink {
    stream: Mutex<TcpStream>,
    rx: Receiver<Request>,
    dead: Arc<AtomicBool>,
}

impl TcpSessionLink {
    /// Wrap an accepted client socket.
    pub fn new(stream: TcpStream) -> std::io::Result<TcpSessionLink> {
        stream.set_nodelay(true).ok();
        let reader = stream.try_clone()?;
        let (tx, rx) = unbounded();
        let dead = Arc::new(AtomicBool::new(false));
        {
            let dead = dead.clone();
            std::thread::Builder::new()
                .name("fc-gw-session-rx".into())
                .spawn(move || request_read_loop(reader, tx, dead))
                .expect("spawn session reader");
        }
        Ok(TcpSessionLink {
            stream: Mutex::new(stream),
            rx,
            dead,
        })
    }
}

fn request_read_loop(mut stream: TcpStream, tx: Sender<Request>, dead: Arc<AtomicBool>) {
    let mut buf = BytesMut::with_capacity(64 * 1024);
    let mut chunk = [0u8; 16 * 1024];
    loop {
        match decode_request(&mut buf) {
            Ok(Some(req)) => {
                if tx.send(req).is_err() {
                    break;
                }
                continue;
            }
            Ok(None) => {}
            Err(_) => break, // protocol corruption: drop the session
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    dead.store(true, Ordering::SeqCst);
}

impl SessionLink for TcpSessionLink {
    fn send(&self, reply: Reply) -> Result<(), LinkClosed> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(LinkClosed);
        }
        let mut buf = BytesMut::new();
        encode_reply(&reply, &mut buf);
        let mut stream = self.stream.lock();
        stream.write_all(&buf).map_err(|_| {
            self.dead.store(true, Ordering::SeqCst);
            LinkClosed
        })
    }

    fn recv_timeout(&self, timeout: Duration) -> Result<Option<Request>, LinkClosed> {
        match self.rx.recv_timeout(timeout) {
            Ok(req) => Ok(Some(req)),
            Err(RecvTimeoutError::Timeout) => {
                if self.dead.load(Ordering::SeqCst) && self.rx.try_recv().is_err() {
                    Err(LinkClosed)
                } else {
                    Ok(None)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(LinkClosed),
        }
    }
}

impl Drop for TcpSessionLink {
    fn drop(&mut self) {
        let _ = self.stream.lock().shutdown(Shutdown::Both);
        self.dead.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::ErrorCode;

    #[test]
    fn mem_session_passes_typed_values() {
        let (client, server) = mem_session();
        client
            .tx
            .send(Request::Flush { id: 1 })
            .expect("send request");
        let got = server
            .recv_timeout(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        assert_eq!(got, Request::Flush { id: 1 });
        server
            .send(Reply::Error {
                id: 1,
                code: ErrorCode::Busy,
            })
            .unwrap();
        let reply = client.rx.recv_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(reply.id(), 1);
    }

    #[test]
    fn mem_session_timeout_is_not_closure() {
        let (client, server) = mem_session();
        assert_eq!(server.recv_timeout(Duration::from_millis(5)).unwrap(), None);
        drop(client);
        assert_eq!(
            server.recv_timeout(Duration::from_millis(5)),
            Err(LinkClosed)
        );
    }
}
