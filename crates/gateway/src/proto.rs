//! Client-facing wire protocol.
//!
//! Same framing discipline as the peer protocol in `fc_cluster::wire` — a
//! hand-rolled, length-prefixed binary format over [`bytes`]:
//!
//! ```text
//! [u32 LE: payload length][u32 LE: CRC-32 of payload][u8: message tag][payload…]
//! ```
//!
//! The protocol is *versioned*: every session opens with
//! [`Request::Hello`] carrying [`PROTO_VERSION`]; the gateway refuses
//! mismatched clients with [`ErrorCode::BadVersion`] before serving any
//! I/O, so the format can evolve without silently misreading old clients.
//!
//! Requests carry a client-chosen `id` that the gateway echoes in the
//! matching reply, which is what makes pipelining possible: a client may
//! have many requests in flight and correlate replies by id, in order —
//! the gateway always replies in receive order per session.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use fc_cluster::wire::crc32;

/// Current protocol version, sent in [`Request::Hello`] and checked by the
/// gateway before any I/O is served.
///
/// * **v1** — initial protocol.
/// * **v2** — adds [`Reply::Unavailable`] (typed back-pressure when every
///   replica of a shard is down). The gateway still serves v1 clients
///   ([`MIN_PROTO_VERSION`]), downgrading `Unavailable` to
///   `Error { code: Busy }` on their sessions, so old clients keep their
///   retry semantics without learning the new tag.
pub const PROTO_VERSION: u16 = 2;

/// Oldest client protocol version the gateway still accepts.
pub const MIN_PROTO_VERSION: u16 = 1;

/// Maximum frame payload accepted by either side (16 MiB) — same bound as
/// the peer protocol, protects against corrupted length prefixes.
pub const MAX_FRAME: usize = 16 << 20;

/// Errors from [`decode_request`] / [`decode_reply`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(usize),
    /// Unknown message tag or enum discriminant.
    BadTag(u8),
    /// Frame body ended before the message was complete.
    Truncated,
    /// Frame checksum mismatch.
    Checksum { expected: u32, found: u32 },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::FrameTooLarge(n) => write!(f, "frame too large: {n} bytes"),
            ProtoError::BadTag(t) => write!(f, "bad message tag {t}"),
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Checksum { expected, found } => {
                write!(
                    f,
                    "frame checksum mismatch: expected {expected:#x}, found {found:#x}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

/// Why the gateway refused a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Shed by admission control (rate limit or queue-depth cap). The
    /// request was *not* executed; the client may retry after backoff.
    Busy,
    /// The client's [`Request::Hello`] carried an unsupported version.
    BadVersion,
    /// Malformed request: zero pages, oversized run, or I/O before Hello.
    BadRequest,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Busy => 0,
            ErrorCode::BadVersion => 1,
            ErrorCode::BadRequest => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(ErrorCode::Busy),
            1 => Ok(ErrorCode::BadVersion),
            2 => Ok(ErrorCode::BadRequest),
            other => Err(ProtoError::BadTag(other)),
        }
    }

    /// Static label used in obs events and loadgen tables.
    pub fn name(self) -> &'static str {
        match self {
            ErrorCode::Busy => "busy",
            ErrorCode::BadVersion => "bad_version",
            ErrorCode::BadRequest => "bad_request",
        }
    }
}

/// Client → gateway messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Session handshake: protocol version + the caller's client id (used
    /// for per-client admission and stats attribution on the node).
    Hello { version: u16, client: u64 },
    /// Read `pages` consecutive logical pages starting at `lpn`.
    Read { id: u64, lpn: u64, pages: u32 },
    /// Write consecutive logical pages starting at `lpn`, one payload per
    /// page.
    Write {
        id: u64,
        lpn: u64,
        pages: Vec<Bytes>,
    },
    /// Discard `pages` consecutive logical pages starting at `lpn`.
    Trim { id: u64, lpn: u64, pages: u32 },
    /// Durability barrier: destage every dirty buffered page to the SSD.
    Flush { id: u64 },
}

impl Request {
    /// The request id echoed by the matching reply (0 for Hello).
    pub fn id(&self) -> u64 {
        match self {
            Request::Hello { .. } => 0,
            Request::Read { id, .. }
            | Request::Write { id, .. }
            | Request::Trim { id, .. }
            | Request::Flush { id } => *id,
        }
    }
}

/// Gateway → client messages. Every reply echoes the request id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// Handshake accepted; echoes the negotiated version and the gateway's
    /// global in-flight cap (a pipelining hint).
    HelloOk { version: u16, max_inflight: u32 },
    /// One entry per requested page, in lpn order; `None` for pages never
    /// written (or trimmed).
    ReadOk { id: u64, pages: Vec<Option<Bytes>> },
    /// All pages durable. `replicated` is true when every page landed in
    /// the peer's remote buffer (false ⇒ at least one wrote through).
    WriteOk {
        id: u64,
        pages: u32,
        replicated: bool,
    },
    /// Trim applied.
    TrimOk { id: u64, pages: u32 },
    /// Flush barrier complete; `flushed` is the number of pages destaged.
    FlushOk { id: u64, flushed: u64 },
    /// Request refused; see [`ErrorCode`].
    Error { id: u64, code: ErrorCode },
    /// Every replica of a shard this request touches is down (v2+). The
    /// request may have partially applied; retrying the same request ids
    /// after `retry_after_ms` is safe — the node-side dedup window makes
    /// resent write runs exactly-once.
    Unavailable { id: u64, retry_after_ms: u32 },
}

impl Reply {
    /// The id of the request this reply answers (0 for HelloOk).
    pub fn id(&self) -> u64 {
        match self {
            Reply::HelloOk { .. } => 0,
            Reply::ReadOk { id, .. }
            | Reply::WriteOk { id, .. }
            | Reply::TrimOk { id, .. }
            | Reply::FlushOk { id, .. }
            | Reply::Error { id, .. }
            | Reply::Unavailable { id, .. } => *id,
        }
    }
}

const TAG_HELLO: u8 = 1;
const TAG_READ: u8 = 2;
const TAG_WRITE: u8 = 3;
const TAG_TRIM: u8 = 4;
const TAG_FLUSH: u8 = 5;

const TAG_HELLO_OK: u8 = 129;
const TAG_READ_OK: u8 = 130;
const TAG_WRITE_OK: u8 = 131;
const TAG_TRIM_OK: u8 = 132;
const TAG_FLUSH_OK: u8 = 133;
const TAG_ERROR: u8 = 134;
const TAG_UNAVAILABLE: u8 = 135;

fn begin_frame(out: &mut BytesMut) -> usize {
    let len_pos = out.len();
    out.put_u32_le(0); // length, backfilled
    out.put_u32_le(0); // CRC-32 of the body, backfilled
    len_pos
}

fn end_frame(out: &mut BytesMut, len_pos: usize) {
    let body_start = len_pos + 8;
    let body_len = out.len() - body_start;
    let crc = crc32(&out[body_start..]);
    out[len_pos..len_pos + 4].copy_from_slice(&(body_len as u32).to_le_bytes());
    out[len_pos + 4..len_pos + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Append one framed request to `out`.
pub fn encode_request(req: &Request, out: &mut BytesMut) {
    let len_pos = begin_frame(out);
    match req {
        Request::Hello { version, client } => {
            out.put_u8(TAG_HELLO);
            out.put_u16_le(*version);
            out.put_u64_le(*client);
        }
        Request::Read { id, lpn, pages } => {
            out.put_u8(TAG_READ);
            out.put_u64_le(*id);
            out.put_u64_le(*lpn);
            out.put_u32_le(*pages);
        }
        Request::Write { id, lpn, pages } => {
            out.put_u8(TAG_WRITE);
            out.put_u64_le(*id);
            out.put_u64_le(*lpn);
            out.put_u32_le(pages.len() as u32);
            for p in pages {
                out.put_u32_le(p.len() as u32);
                out.put_slice(p);
            }
        }
        Request::Trim { id, lpn, pages } => {
            out.put_u8(TAG_TRIM);
            out.put_u64_le(*id);
            out.put_u64_le(*lpn);
            out.put_u32_le(*pages);
        }
        Request::Flush { id } => {
            out.put_u8(TAG_FLUSH);
            out.put_u64_le(*id);
        }
    }
    end_frame(out, len_pos);
}

/// Append one framed reply to `out`.
pub fn encode_reply(reply: &Reply, out: &mut BytesMut) {
    let len_pos = begin_frame(out);
    match reply {
        Reply::HelloOk {
            version,
            max_inflight,
        } => {
            out.put_u8(TAG_HELLO_OK);
            out.put_u16_le(*version);
            out.put_u32_le(*max_inflight);
        }
        Reply::ReadOk { id, pages } => {
            out.put_u8(TAG_READ_OK);
            out.put_u64_le(*id);
            out.put_u32_le(pages.len() as u32);
            for p in pages {
                match p {
                    Some(data) => {
                        out.put_u8(1);
                        out.put_u32_le(data.len() as u32);
                        out.put_slice(data);
                    }
                    None => out.put_u8(0),
                }
            }
        }
        Reply::WriteOk {
            id,
            pages,
            replicated,
        } => {
            out.put_u8(TAG_WRITE_OK);
            out.put_u64_le(*id);
            out.put_u32_le(*pages);
            out.put_u8(u8::from(*replicated));
        }
        Reply::TrimOk { id, pages } => {
            out.put_u8(TAG_TRIM_OK);
            out.put_u64_le(*id);
            out.put_u32_le(*pages);
        }
        Reply::FlushOk { id, flushed } => {
            out.put_u8(TAG_FLUSH_OK);
            out.put_u64_le(*id);
            out.put_u64_le(*flushed);
        }
        Reply::Error { id, code } => {
            out.put_u8(TAG_ERROR);
            out.put_u64_le(*id);
            out.put_u8(code.to_u8());
        }
        Reply::Unavailable { id, retry_after_ms } => {
            out.put_u8(TAG_UNAVAILABLE);
            out.put_u64_le(*id);
            out.put_u32_le(*retry_after_ms);
        }
    }
    end_frame(out, len_pos);
}

fn split_frame(buf: &mut BytesMut) -> Result<Option<Bytes>, ProtoError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len));
    }
    if buf.len() < 8 + len {
        return Ok(None);
    }
    let expected = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    buf.advance(8);
    let body = buf.split_to(len).freeze();
    let found = crc32(&body);
    if found != expected {
        return Err(ProtoError::Checksum { expected, found });
    }
    Ok(Some(body))
}

fn need(body: &Bytes, n: usize) -> Result<(), ProtoError> {
    if body.remaining() < n {
        Err(ProtoError::Truncated)
    } else {
        Ok(())
    }
}

/// Decode one request from `buf`, if a complete frame is present.
/// Consumed bytes are removed from `buf`; `Ok(None)` means "wait for more".
pub fn decode_request(buf: &mut BytesMut) -> Result<Option<Request>, ProtoError> {
    let Some(mut body) = split_frame(buf)? else {
        return Ok(None);
    };
    need(&body, 1)?;
    let tag = body.get_u8();
    let req = match tag {
        TAG_HELLO => {
            need(&body, 2 + 8)?;
            Request::Hello {
                version: body.get_u16_le(),
                client: body.get_u64_le(),
            }
        }
        TAG_READ => {
            need(&body, 8 + 8 + 4)?;
            Request::Read {
                id: body.get_u64_le(),
                lpn: body.get_u64_le(),
                pages: body.get_u32_le(),
            }
        }
        TAG_WRITE => {
            need(&body, 8 + 8 + 4)?;
            let id = body.get_u64_le();
            let lpn = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            let mut pages = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&body, 4)?;
                let dl = body.get_u32_le() as usize;
                need(&body, dl)?;
                pages.push(body.split_to(dl));
            }
            Request::Write { id, lpn, pages }
        }
        TAG_TRIM => {
            need(&body, 8 + 8 + 4)?;
            Request::Trim {
                id: body.get_u64_le(),
                lpn: body.get_u64_le(),
                pages: body.get_u32_le(),
            }
        }
        TAG_FLUSH => {
            need(&body, 8)?;
            Request::Flush {
                id: body.get_u64_le(),
            }
        }
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(Some(req))
}

/// Decode one reply from `buf`, if a complete frame is present.
pub fn decode_reply(buf: &mut BytesMut) -> Result<Option<Reply>, ProtoError> {
    let Some(mut body) = split_frame(buf)? else {
        return Ok(None);
    };
    need(&body, 1)?;
    let tag = body.get_u8();
    let reply = match tag {
        TAG_HELLO_OK => {
            need(&body, 2 + 4)?;
            Reply::HelloOk {
                version: body.get_u16_le(),
                max_inflight: body.get_u32_le(),
            }
        }
        TAG_READ_OK => {
            need(&body, 8 + 4)?;
            let id = body.get_u64_le();
            let n = body.get_u32_le() as usize;
            let mut pages = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&body, 1)?;
                match body.get_u8() {
                    0 => pages.push(None),
                    1 => {
                        need(&body, 4)?;
                        let dl = body.get_u32_le() as usize;
                        need(&body, dl)?;
                        pages.push(Some(body.split_to(dl)));
                    }
                    other => return Err(ProtoError::BadTag(other)),
                }
            }
            Reply::ReadOk { id, pages }
        }
        TAG_WRITE_OK => {
            need(&body, 8 + 4 + 1)?;
            Reply::WriteOk {
                id: body.get_u64_le(),
                pages: body.get_u32_le(),
                replicated: body.get_u8() != 0,
            }
        }
        TAG_TRIM_OK => {
            need(&body, 8 + 4)?;
            Reply::TrimOk {
                id: body.get_u64_le(),
                pages: body.get_u32_le(),
            }
        }
        TAG_FLUSH_OK => {
            need(&body, 8 + 8)?;
            Reply::FlushOk {
                id: body.get_u64_le(),
                flushed: body.get_u64_le(),
            }
        }
        TAG_ERROR => {
            need(&body, 8 + 1)?;
            Reply::Error {
                id: body.get_u64_le(),
                code: ErrorCode::from_u8(body.get_u8())?,
            }
        }
        TAG_UNAVAILABLE => {
            need(&body, 8 + 4)?;
            Reply::Unavailable {
                id: body.get_u64_le(),
                retry_after_ms: body.get_u32_le(),
            }
        }
        other => return Err(ProtoError::BadTag(other)),
    };
    Ok(Some(reply))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTO_VERSION,
                client: 7,
            },
            Request::Read {
                id: 1,
                lpn: 42,
                pages: 8,
            },
            Request::Write {
                id: 2,
                lpn: 100,
                pages: vec![Bytes::from_static(b"page-a"), Bytes::from_static(b"page-b")],
            },
            Request::Trim {
                id: 3,
                lpn: 5,
                pages: 2,
            },
            Request::Flush { id: 4 },
        ]
    }

    fn all_replies() -> Vec<Reply> {
        vec![
            Reply::HelloOk {
                version: PROTO_VERSION,
                max_inflight: 64,
            },
            Reply::ReadOk {
                id: 1,
                pages: vec![Some(Bytes::from_static(b"hit")), None],
            },
            Reply::WriteOk {
                id: 2,
                pages: 2,
                replicated: true,
            },
            Reply::TrimOk { id: 3, pages: 2 },
            Reply::FlushOk { id: 4, flushed: 17 },
            Reply::Error {
                id: 5,
                code: ErrorCode::Busy,
            },
            Reply::Unavailable {
                id: 6,
                retry_after_ms: 250,
            },
        ]
    }

    #[test]
    fn requests_roundtrip() {
        let mut buf = BytesMut::new();
        for r in all_requests() {
            encode_request(&r, &mut buf);
        }
        for want in all_requests() {
            let got = decode_request(&mut buf).unwrap().unwrap();
            assert_eq!(got, want);
        }
        assert!(decode_request(&mut buf).unwrap().is_none());
        assert!(buf.is_empty());
    }

    #[test]
    fn replies_roundtrip() {
        let mut buf = BytesMut::new();
        for r in all_replies() {
            encode_reply(&r, &mut buf);
        }
        for want in all_replies() {
            let got = decode_reply(&mut buf).unwrap().unwrap();
            assert_eq!(got, want);
        }
        assert!(decode_reply(&mut buf).unwrap().is_none());
    }

    #[test]
    fn partial_frames_wait_for_more_bytes() {
        let mut full = BytesMut::new();
        encode_request(
            &Request::Write {
                id: 9,
                lpn: 0,
                pages: vec![Bytes::from_static(b"abcdef")],
            },
            &mut full,
        );
        for cut in 0..full.len() {
            let mut partial = BytesMut::from(&full[..cut]);
            assert!(
                decode_request(&mut partial).unwrap().is_none(),
                "cut at {cut} must be incomplete, not an error"
            );
        }
    }

    #[test]
    fn any_single_flipped_byte_is_rejected_or_incomplete() {
        let mut full = BytesMut::new();
        encode_request(
            &Request::Write {
                id: 1,
                lpn: 3,
                pages: vec![Bytes::from_static(b"payload-bytes")],
            },
            &mut full,
        );
        let original = full.clone();
        for i in 0..full.len() {
            let mut tampered = BytesMut::from(&original[..]);
            tampered[i] ^= 0x40;
            match decode_request(&mut tampered) {
                Err(_) => {}   // corruption detected
                Ok(None) => {} // frame no longer complete (length prefix hit)
                Ok(Some(got)) => {
                    // A decoded frame must never silently differ from the
                    // original message.
                    let mut pristine = BytesMut::from(&original[..]);
                    let want = decode_request(&mut pristine).unwrap().unwrap();
                    assert_eq!(got, want, "flip at byte {i} decoded to a different message");
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let mut buf = BytesMut::new();
        buf.put_u32_le((MAX_FRAME + 1) as u32);
        buf.put_u32_le(0);
        assert!(matches!(
            decode_reply(&mut buf),
            Err(ProtoError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn ids_are_echoed() {
        for r in all_requests() {
            let id = r.id();
            match r {
                Request::Hello { .. } => assert_eq!(id, 0),
                _ => assert!(id > 0),
            }
        }
        assert_eq!(
            Reply::Error {
                id: 77,
                code: ErrorCode::BadRequest
            }
            .id(),
            77
        );
    }
}
