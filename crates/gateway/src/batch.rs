//! Write coalescing.
//!
//! The scheduler merges a session's pipelined writes into block-aligned
//! runs before they hit the node. Two effects, both straight from the
//! paper's observation that destage cost is dominated by *partial-block*
//! writes:
//!
//! * **Last-writer-wins dedup** — a page overwritten twice inside one
//!   batch window is submitted once, with the newest payload.
//! * **Contiguity** — adjacent pages are grouped into one run per logical
//!   block, so the node's buffer sees sequential insertions and the
//!   destage path can pick fuller blocks (Section III.B's sequential-
//!   window logic gets real sequences to find).
//!
//! A run never spans a block boundary: blocks are the destage unit, and a
//! run that crossed one would tie two blocks' fates together.

use bytes::Bytes;
use std::collections::BTreeMap;

/// One contiguous, block-confined run of pages ready for
/// [`fc_cluster::Node::write_run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteRun {
    /// First logical page of the run.
    pub lpn: u64,
    /// Payloads for `lpn`, `lpn+1`, … in order.
    pub pages: Vec<Bytes>,
}

impl WriteRun {
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }
}

/// Coalesce `(lpn, payload)` writes — in arrival order — into sorted,
/// deduplicated, block-confined runs.
///
/// Later writes to the same lpn replace earlier ones (last-writer-wins).
/// Output runs are sorted by lpn and never cross a multiple of
/// `pages_per_block`.
pub fn coalesce(writes: Vec<(u64, Bytes)>, pages_per_block: u32) -> Vec<WriteRun> {
    coalesce_sharded(writes, pages_per_block, |_| 0)
        .into_iter()
        .map(|(_, run)| run)
        .collect()
}

/// Shard-aware coalescing for the sharded gateway: like [`coalesce`], but
/// each run is tagged with its owning shard and **never spans a shard
/// boundary** — a run is broken wherever `shard_of` changes, in addition
/// to the logical-block breaks.
///
/// The extra break matters whenever the router's granularity differs from
/// the gateway's block size (e.g. a ring routing 2-page blocks under an
/// 8-page destage block): block-confined runs alone would happily glue
/// together pages owned by different pairs, and submitting such a run to
/// one node would write another shard's pages to the wrong pair.
pub fn coalesce_sharded(
    writes: Vec<(u64, Bytes)>,
    pages_per_block: u32,
    shard_of: impl Fn(u64) -> u16,
) -> Vec<(u16, WriteRun)> {
    let ppb = u64::from(pages_per_block.max(1));
    // BTreeMap gives both last-writer-wins (insert replaces) and sorted
    // iteration for run detection.
    let mut newest: BTreeMap<u64, Bytes> = BTreeMap::new();
    for (lpn, data) in writes {
        newest.insert(lpn, data);
    }
    let mut runs: Vec<(u16, WriteRun)> = Vec::new();
    for (lpn, data) in newest {
        let shard = shard_of(lpn);
        match runs.last_mut() {
            Some((s, run))
                if *s == shard
                    && lpn == run.lpn + run.pages.len() as u64
                    && lpn / ppb == run.lpn / ppb =>
            {
                run.pages.push(data);
            }
            _ => runs.push((
                shard,
                WriteRun {
                    lpn,
                    pages: vec![data],
                },
            )),
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &'static str) -> Bytes {
        Bytes::from_static(s.as_bytes())
    }

    #[test]
    fn adjacent_writes_merge_into_one_run() {
        let runs = coalesce(vec![(2, b("c")), (0, b("a")), (1, b("b"))], 4);
        assert_eq!(
            runs,
            vec![WriteRun {
                lpn: 0,
                pages: vec![b("a"), b("b"), b("c")],
            }]
        );
    }

    #[test]
    fn gaps_split_runs() {
        let runs = coalesce(vec![(0, b("a")), (2, b("c"))], 4);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].lpn, 0);
        assert_eq!(runs[1].lpn, 2);
    }

    #[test]
    fn last_writer_wins() {
        let runs = coalesce(vec![(5, b("old")), (5, b("new"))], 4);
        assert_eq!(
            runs,
            vec![WriteRun {
                lpn: 5,
                pages: vec![b("new")],
            }]
        );
    }

    #[test]
    fn runs_never_cross_block_boundaries() {
        // Pages 2..6 with 4-page blocks: [2,3] in block 0, [4,5] in block 1.
        let runs = coalesce(
            vec![(2, b("p2")), (3, b("p3")), (4, b("p4")), (5, b("p5"))],
            4,
        );
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].lpn, runs[0].len()), (2, 2));
        assert_eq!((runs[1].lpn, runs[1].len()), (4, 2));
    }

    #[test]
    fn empty_input_and_degenerate_block_size() {
        assert!(coalesce(Vec::new(), 4).is_empty());
        // pages_per_block == 0 is clamped to 1: every page its own block.
        let runs = coalesce(vec![(0, b("a")), (1, b("b"))], 0);
        assert_eq!(runs.len(), 2);
    }

    /// Regression for the sharded scheduler: an adjacent LPN run inside
    /// ONE logical block whose pages belong to TWO shards (router finer
    /// than the block size) must be split at every shard change — block
    /// boundaries alone would have produced a single run and routed half
    /// its pages to the wrong pair.
    #[test]
    fn runs_never_cross_shard_boundaries() {
        // 8-page blocks, but a router that alternates shards every 2 pages:
        // pages 0..8 are one block yet belong to shards 0,0,1,1,0,0,1,1.
        let shard_of = |lpn: u64| ((lpn / 2) % 2) as u16;
        let writes: Vec<(u64, Bytes)> = (0..8u64).map(|l| (l, b("p"))).collect();

        // The shard-blind coalescer glues everything into one run…
        let blind = coalesce(writes.clone(), 8);
        assert_eq!(blind.len(), 1, "precondition: one block ⇒ one blind run");

        // …the shard-aware one must break at every ownership change.
        let runs = coalesce_sharded(writes, 8, shard_of);
        assert_eq!(runs.len(), 4);
        for (shard, run) in &runs {
            assert_eq!(run.len(), 2);
            for i in 0..run.len() as u64 {
                assert_eq!(
                    shard_of(run.lpn + i),
                    *shard,
                    "run at lpn {} leaked into another shard",
                    run.lpn
                );
            }
        }
        // Pages survive intact: 4 runs × 2 pages = the 8 input pages.
        let total: usize = runs.iter().map(|(_, r)| r.len()).sum();
        assert_eq!(total, 8);
    }

    #[test]
    fn sharded_coalesce_still_dedups_and_blocks_still_split() {
        let shard_of = |lpn: u64| (lpn / 4) as u16;
        // Pages 2..6 with 4-page blocks and a block-aligned router:
        // the block boundary and shard boundary coincide at 4.
        let runs = coalesce_sharded(
            vec![
                (2, b("old2")),
                (3, b("p3")),
                (4, b("p4")),
                (5, b("p5")),
                (2, b("new2")),
            ],
            4,
            shard_of,
        );
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            (
                0,
                WriteRun {
                    lpn: 2,
                    pages: vec![b("new2"), b("p3")]
                }
            )
        );
        assert_eq!(
            runs[1],
            (
                1,
                WriteRun {
                    lpn: 4,
                    pages: vec![b("p4"), b("p5")]
                }
            )
        );
    }

    #[test]
    fn dedup_is_counted_by_page_totals() {
        let input = vec![(0, b("x")), (1, b("y")), (0, b("z")), (8, b("w"))];
        let in_pages = input.len();
        let runs = coalesce(input, 4);
        let out_pages: usize = runs.iter().map(WriteRun::len).sum();
        assert_eq!(in_pages - out_pages, 1, "one overwrite merged away");
        // The surviving page 0 carries the newest payload.
        assert_eq!(runs[0].pages[0], b("z"));
    }
}
