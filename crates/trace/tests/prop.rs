//! Property-based tests for trace generation and parsing.

use fc_simkit::SimDuration;
use fc_trace::{parse_spc, SpcConfig, SyntheticSpec, TraceStats};
use proptest::prelude::*;

fn spec_strategy() -> impl Strategy<Value = SyntheticSpec> {
    (
        0.0f64..1.0,    // write_frac
        0.0f64..0.9,    // seq_frac
        1.0f64..4.0,    // mean_req_pages
        1u64..200,      // interarrival ms
        0.0f64..0.99,   // zipf theta
        1usize..5,      // streams
        1usize..6,      // drift epochs
        512u64..32_768, // address pages
    )
        .prop_map(
            |(write_frac, seq_frac, mean_req_pages, ia, zipf_theta, streams, drift, pages)| {
                let mut s = SyntheticSpec::mix(pages);
                s.write_frac = write_frac;
                s.seq_frac = seq_frac;
                s.mean_req_pages = mean_req_pages;
                s.mean_interarrival = SimDuration::from_millis(ia);
                s.zipf_theta = zipf_theta;
                s.interleave_streams = streams;
                s.drift_epochs = drift;
                s.requests = 400;
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any spec yields a well-formed trace: right length, in-bounds
    /// addresses, monotone timestamps, positive sizes.
    #[test]
    fn any_spec_generates_well_formed_traces(spec in spec_strategy(), seed in 0u64..500) {
        let t = spec.generate(seed);
        prop_assert_eq!(t.len(), spec.requests);
        let mut prev = None;
        for r in &t.requests {
            prop_assert!(r.pages >= 1);
            prop_assert!(r.end_lpn() <= spec.address_pages, "{:?}", r);
            if let Some(p) = prev {
                prop_assert!(r.at >= p);
            }
            prev = Some(r.at);
        }
    }

    /// Generation is a pure function of (spec, seed).
    #[test]
    fn generation_is_deterministic(spec in spec_strategy(), seed in 0u64..500) {
        let a = spec.generate(seed);
        let b = spec.generate(seed);
        prop_assert_eq!(a.requests, b.requests);
    }

    /// Wrapping a trace into any smaller space keeps every request valid.
    #[test]
    fn wrapping_preserves_validity(spec in spec_strategy(), target in 64u64..2_048) {
        let mut t = spec.generate(7);
        t.wrap_addresses(target);
        for r in &t.requests {
            prop_assert!(r.end_lpn() <= target);
            prop_assert!(r.pages >= 1);
        }
    }

    /// Measured write fraction tracks the spec within sampling error.
    #[test]
    fn write_fraction_tracks_spec(wf in 0.05f64..0.95, seed in 0u64..100) {
        let mut spec = SyntheticSpec::mix(8_192);
        spec.write_frac = wf;
        spec.requests = 3_000;
        let s = TraceStats::from_trace(&spec.generate(seed));
        prop_assert!((s.write_pct / 100.0 - wf).abs() < 0.05,
            "measured {} vs spec {}", s.write_pct / 100.0, wf);
    }

    /// The SPC parser is total on line-structured input: any mix of valid
    /// records and junk lines either parses or errors with a line number —
    /// never panics — and valid-only inputs round-trip the record count.
    #[test]
    fn spc_parser_total(
        records in prop::collection::vec(
            (0u32..3, 0u64..1_000_000, 0u64..65_536, prop::bool::ANY, 0.0f64..1e4),
            0..40
        )
    ) {
        let text: String = records
            .iter()
            .map(|(asu, lba, size, w, ts)| {
                format!("{asu},{lba},{size},{},{ts:.6}\n", if *w { "w" } else { "r" })
            })
            .collect();
        let cfg = SpcConfig { asu_filter: None, ..SpcConfig::default() };
        let t = parse_spc("prop", &text, cfg).unwrap();
        prop_assert_eq!(t.len(), records.len());
        for r in &t.requests {
            prop_assert!(r.pages >= 1);
        }
    }
}
