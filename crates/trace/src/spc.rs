//! SPC trace format parser.
//!
//! The paper's Fin1/Fin2 workloads are the OLTP traces "running at a
//! financial institution … made available by the Storage Performance Council"
//! via the UMass Trace Repository. Those files are not redistributable, so
//! the experiments ship with calibrated synthetic equivalents
//! ([`crate::synth`]) — but this parser lets anyone who has the real files
//! drop them in.
//!
//! Format: one request per line,
//!
//! ```text
//! ASU,LBA,Size,Opcode,Timestamp[,extra fields ignored]
//! ```
//!
//! * `ASU` — application-specific unit (a logical volume); the paper filters
//!   to a single server's traffic, which we expose as an ASU filter.
//! * `LBA` — logical block address in 512-byte sectors.
//! * `Size` — request size in bytes.
//! * `Opcode` — `r`/`R` or `w`/`W`.
//! * `Timestamp` — seconds (float) since trace start.

use crate::record::{IoRequest, Op, Trace};
use fc_simkit::SimTime;

/// Parser configuration.
#[derive(Debug, Clone, Copy)]
pub struct SpcConfig {
    /// Keep only records from this ASU (None = all).
    pub asu_filter: Option<u32>,
    /// Sector size the LBA column is expressed in.
    pub sector_bytes: u32,
    /// Page size to convert to.
    pub page_bytes: u32,
}

impl Default for SpcConfig {
    fn default() -> Self {
        SpcConfig {
            asu_filter: Some(0),
            sector_bytes: 512,
            page_bytes: 4096,
        }
    }
}

/// A parse failure, with the offending line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpcParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for SpcParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SPC trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SpcParseError {}

/// Parse SPC-format text into a page-granular [`Trace`].
///
/// Byte offsets are floored to a page boundary and sizes rounded up to whole
/// pages; zero-size records become one-page requests (both conventions match
/// trace-replay practice for page-granular devices). Blank lines and lines
/// starting with `#` are skipped.
pub fn parse_spc(name: &str, text: &str, cfg: SpcConfig) -> Result<Trace, SpcParseError> {
    let mut trace = Trace::new(name);
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        let err = |message: String| SpcParseError {
            line: lineno,
            message,
        };
        let asu: u32 = fields
            .next()
            .ok_or_else(|| err("missing ASU".into()))?
            .parse()
            .map_err(|e| err(format!("bad ASU: {e}")))?;
        let lba: u64 = fields
            .next()
            .ok_or_else(|| err("missing LBA".into()))?
            .parse()
            .map_err(|e| err(format!("bad LBA: {e}")))?;
        let size: u64 = fields
            .next()
            .ok_or_else(|| err("missing size".into()))?
            .parse()
            .map_err(|e| err(format!("bad size: {e}")))?;
        let opcode = fields.next().ok_or_else(|| err("missing opcode".into()))?;
        let ts: f64 = fields
            .next()
            .ok_or_else(|| err("missing timestamp".into()))?
            .parse()
            .map_err(|e| err(format!("bad timestamp: {e}")))?;

        if let Some(want) = cfg.asu_filter {
            if asu != want {
                continue;
            }
        }
        let op = match opcode {
            "r" | "R" => Op::Read,
            "w" | "W" => Op::Write,
            // Extension opcode emitted by `write_spc` for TRIM records.
            "t" | "T" => Op::Trim,
            other => return Err(err(format!("unknown opcode {other:?}"))),
        };
        let byte_start = lba * cfg.sector_bytes as u64;
        let byte_end = byte_start + size.max(1);
        let page = cfg.page_bytes as u64;
        let lpn = byte_start / page;
        let pages = byte_end.div_ceil(page) - lpn;
        if !(0.0..=u64::MAX as f64).contains(&ts) {
            return Err(err(format!("timestamp {ts} out of range")));
        }
        trace.push(IoRequest {
            at: SimTime::from_nanos((ts * 1e9) as u64),
            lpn,
            pages: pages.max(1).min(u32::MAX as u64) as u32,
            op,
        });
    }
    Ok(trace)
}

/// Serialise a trace back to SPC format (the inverse of [`parse_spc`], up to
/// page quantisation). TRIM records are written with opcode `t` — an
/// extension to the classic format; [`parse_spc`] accepts it too.
pub fn write_spc(trace: &Trace, cfg: SpcConfig) -> String {
    let mut out = String::with_capacity(trace.len() * 24);
    out.push_str(&format!("# {} ({} requests)\n", trace.name, trace.len()));
    let asu = cfg.asu_filter.unwrap_or(0);
    let sectors_per_page = (cfg.page_bytes / cfg.sector_bytes).max(1) as u64;
    for r in &trace.requests {
        let opcode = match r.op {
            Op::Read => 'r',
            Op::Write => 'w',
            Op::Trim => 't',
        };
        out.push_str(&format!(
            "{},{},{},{},{:.6}\n",
            asu,
            r.lpn * sectors_per_page,
            r.pages as u64 * cfg.page_bytes as u64,
            opcode,
            r.at.as_secs_f64(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# financial-style sample
0,1024,4096,w,0.000000
0,1032,8192,R,0.015000
1,0,4096,w,0.020000
0,3,512,r,0.030000
";

    #[test]
    fn parses_and_filters_asu() {
        let t = parse_spc("sample", SAMPLE, SpcConfig::default()).unwrap();
        assert_eq!(t.len(), 3); // ASU 1 filtered out
        assert_eq!(t.name, "sample");
        // 1024 sectors * 512 = byte 524288 = page 128.
        assert_eq!(t.requests[0].lpn, 128);
        assert_eq!(t.requests[0].pages, 1);
        assert_eq!(t.requests[0].op, Op::Write);
        // 1032 * 512 = 528384 → page 129; 8192 bytes = 2 pages.
        assert_eq!(t.requests[1].lpn, 129);
        assert_eq!(t.requests[1].pages, 2);
        assert_eq!(t.requests[1].op, Op::Read);
    }

    #[test]
    fn sub_page_request_rounds_to_one_page() {
        let t = parse_spc("s", "0,3,512,r,0.0\n", SpcConfig::default()).unwrap();
        // Sector 3 = byte 1536, inside page 0; 512 bytes stays within page 0.
        assert_eq!(t.requests[0].lpn, 0);
        assert_eq!(t.requests[0].pages, 1);
    }

    #[test]
    fn unaligned_span_covers_both_pages() {
        // Byte 3584..5632 crosses the page-0/page-1 boundary.
        let t = parse_spc("s", "0,7,2048,w,0.5\n", SpcConfig::default()).unwrap();
        assert_eq!(t.requests[0].lpn, 0);
        assert_eq!(t.requests[0].pages, 2);
        assert_eq!(t.requests[0].at, SimTime::from_millis(500));
    }

    #[test]
    fn no_filter_keeps_everything() {
        let cfg = SpcConfig {
            asu_filter: None,
            ..SpcConfig::default()
        };
        let t = parse_spc("s", SAMPLE, cfg).unwrap();
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn bad_lines_report_line_numbers() {
        let e = parse_spc("s", "0,xyz,4096,w,0.0\n", SpcConfig::default()).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("bad LBA"));
        let e2 = parse_spc("s", "\n\n0,0,1,q,0.0\n", SpcConfig::default()).unwrap_err();
        assert_eq!(e2.line, 3);
        assert!(e2.message.contains("unknown opcode"));
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let t = parse_spc("s", "# header\n\n0,0,4096,w,0.0\n", SpcConfig::default()).unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn write_then_parse_round_trips() {
        use fc_simkit::{SimDuration, SimTime};
        let mut t = Trace::new("rt");
        let mut at = SimTime::ZERO;
        for (i, op) in [Op::Write, Op::Read, Op::Trim, Op::Write]
            .iter()
            .enumerate()
        {
            at += SimDuration::from_millis(10);
            t.push(IoRequest {
                at,
                lpn: (i as u64) * 37,
                pages: 1 + i as u32,
                op: *op,
            });
        }
        let text = write_spc(&t, SpcConfig::default());
        let back = parse_spc("rt", &text, SpcConfig::default()).unwrap();
        assert_eq!(back.len(), t.len());
        for (a, b) in t.requests.iter().zip(&back.requests) {
            assert_eq!(a.lpn, b.lpn);
            assert_eq!(a.pages, b.pages);
            assert_eq!(a.op, b.op);
            // Timestamps round-trip at microsecond precision.
            let da = a.at.as_secs_f64();
            let db = b.at.as_secs_f64();
            assert!((da - db).abs() < 1e-5, "{da} vs {db}");
        }
    }

    #[test]
    fn zero_size_becomes_one_page() {
        let t = parse_spc("s", "0,0,0,w,0.0\n", SpcConfig::default()).unwrap();
        assert_eq!(t.requests[0].pages, 1);
    }
}
