//! Open-loop arrival schedules.
//!
//! A trace replayed *closed-loop* (issue → wait → issue) measures service
//! time but hides queueing: the client's own waiting throttles the offered
//! load. An *open-loop* driver instead fires each request at its recorded
//! arrival instant regardless of completions — the shape that actually
//! saturates a server and produces the classic hockey-stick p99 curve.
//!
//! [`ArrivalSchedule`] is the export a load generator needs for that: the
//! per-request offsets from the trace's first arrival, in issue order, with
//! the rate knob ([`ArrivalSchedule::scaled`]) applied up front so the
//! driver's inner loop is just "sleep until offset, send".

use crate::record::Trace;
use fc_simkit::SimDuration;

/// Per-request arrival offsets from the first request of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArrivalSchedule {
    offsets: Vec<SimDuration>,
}

impl ArrivalSchedule {
    /// Offsets of every request from the trace's first arrival. The first
    /// entry is always zero; offsets are non-decreasing (a [`Trace`] keeps
    /// arrival order).
    pub fn from_trace(trace: &Trace) -> Self {
        let origin = match trace.requests.first() {
            Some(r) => r.at,
            None => return ArrivalSchedule::default(),
        };
        ArrivalSchedule {
            offsets: trace
                .requests
                .iter()
                .map(|r| r.at.saturating_since(origin))
                .collect(),
        }
    }

    /// Number of scheduled arrivals.
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True when the schedule has no arrivals.
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Offset of request `i` from the schedule origin.
    pub fn offset(&self, i: usize) -> Option<SimDuration> {
        self.offsets.get(i).copied()
    }

    /// All offsets, in issue order.
    pub fn offsets(&self) -> &[SimDuration] {
        &self.offsets
    }

    /// Offset of the last arrival (the schedule's span). Zero when empty or
    /// single-request.
    pub fn span(&self) -> SimDuration {
        self.offsets.last().copied().unwrap_or(SimDuration::ZERO)
    }

    /// Compress (factor > 1) or stretch (factor < 1) the schedule: a factor
    /// of 10 offers ten times the arrival rate.
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.max(1e-9);
        ArrivalSchedule {
            offsets: self
                .offsets
                .iter()
                .map(|d| SimDuration::from_secs_f64(d.as_secs_f64() / f))
                .collect(),
        }
    }

    /// Mean interarrival gap, `None` for schedules with fewer than two
    /// arrivals (a single request has no gap — not a zero gap, and not NaN).
    pub fn mean_gap(&self) -> Option<SimDuration> {
        if self.offsets.len() < 2 {
            return None;
        }
        let gaps = (self.offsets.len() - 1) as f64;
        Some(SimDuration::from_secs_f64(self.span().as_secs_f64() / gaps))
    }
}

impl Trace {
    /// Export this trace's open-loop arrival schedule (offsets from the
    /// first request, in issue order). See [`ArrivalSchedule`].
    pub fn arrival_schedule(&self) -> ArrivalSchedule {
        ArrivalSchedule::from_trace(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{IoRequest, Op};
    use fc_simkit::SimTime;

    fn req(at_ms: u64, lpn: u64) -> IoRequest {
        IoRequest {
            at: SimTime::from_millis(at_ms),
            lpn,
            pages: 1,
            op: Op::Write,
        }
    }

    #[test]
    fn offsets_are_relative_to_first_arrival() {
        let mut t = Trace::new("t");
        t.push(req(100, 0));
        t.push(req(130, 1));
        t.push(req(190, 2));
        let s = t.arrival_schedule();
        assert_eq!(s.len(), 3);
        assert_eq!(s.offset(0), Some(SimDuration::ZERO));
        assert_eq!(s.offset(1), Some(SimDuration::from_millis(30)));
        assert_eq!(s.offset(2), Some(SimDuration::from_millis(90)));
        assert_eq!(s.span(), SimDuration::from_millis(90));
        assert_eq!(s.mean_gap(), Some(SimDuration::from_millis(45)));
    }

    #[test]
    fn empty_and_single_request_schedules_are_well_defined() {
        let empty = Trace::new("e").arrival_schedule();
        assert!(empty.is_empty());
        assert_eq!(empty.span(), SimDuration::ZERO);
        assert_eq!(empty.mean_gap(), None);
        assert_eq!(empty.offset(0), None);

        let mut one = Trace::new("one");
        one.push(req(500, 7));
        let s = one.arrival_schedule();
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(0), Some(SimDuration::ZERO));
        assert_eq!(s.span(), SimDuration::ZERO);
        assert_eq!(s.mean_gap(), None, "one arrival has no gap");
    }

    #[test]
    fn scaling_compresses_offsets() {
        let mut t = Trace::new("t");
        t.push(req(0, 0));
        t.push(req(1000, 1));
        let fast = t.arrival_schedule().scaled(10.0);
        assert_eq!(fast.offset(1), Some(SimDuration::from_millis(100)));
        let slow = t.arrival_schedule().scaled(0.5);
        assert_eq!(slow.offset(1), Some(SimDuration::from_millis(2000)));
    }

    #[test]
    fn schedule_offsets_are_monotone_for_synthetic_traces() {
        let t = crate::SyntheticSpec::mix(1 << 14)
            .with_requests(500)
            .generate(11);
        let s = t.arrival_schedule();
        assert_eq!(s.len(), 500);
        for w in s.offsets().windows(2) {
            assert!(w[1] >= w[0]);
        }
    }
}
