//! # fc-trace
//!
//! Workloads for the FlashCoop reproduction:
//!
//! * [`record`] — page-granular, timestamped [`record::IoRequest`]s and the
//!   [`record::Trace`] container.
//! * [`spc`] — parser for the SPC OLTP trace format (the paper's Fin1/Fin2
//!   source files, if you have them).
//! * [`synth`] — synthetic generators calibrated to the paper's Table I
//!   (Fin1, Fin2, Mix) with Zipf block-level temporal locality and optional
//!   interleaved sequential streams (Figure 2).
//! * [`stats`] — recompute the Table I columns from any trace.
//! * [`sched`] — open-loop arrival-schedule export for load generators
//!   (per-request offsets from the first arrival, with a rate knob).
//!
//! ```
//! use fc_trace::{SyntheticSpec, TraceStats};
//!
//! let trace = SyntheticSpec::fin1(1 << 16).with_requests(1_000).generate(42);
//! let stats = TraceStats::from_trace(&trace);
//! assert!(stats.write_pct > 85.0); // Fin1 is write-dominant
//! ```

pub mod record;
pub mod sched;
pub mod spc;
pub mod stats;
pub mod synth;

pub use record::{IoRequest, Op, Trace};
pub use sched::ArrivalSchedule;
pub use spc::{parse_spc, write_spc, SpcConfig, SpcParseError};
pub use stats::TraceStats;
pub use synth::SyntheticSpec;
