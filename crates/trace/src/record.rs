//! I/O trace records.
//!
//! Requests are page-granular (the device's access unit, Table II: 4 KB) and
//! timestamped in simulated time. A [`Trace`] is an ordered request sequence
//! plus a name for reporting.

use fc_simkit::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Discard (TRIM): the pages no longer hold live data — e.g. a
    /// short-lived file was deleted (Section III.A).
    Trim,
}

/// One I/O request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoRequest {
    /// Arrival time.
    pub at: SimTime,
    /// First logical page touched.
    pub lpn: u64,
    /// Number of pages (>= 1).
    pub pages: u32,
    /// Read or write.
    pub op: Op,
}

impl IoRequest {
    /// First page *after* the request.
    pub fn end_lpn(&self) -> u64 {
        self.lpn + self.pages as u64
    }

    /// True if this request starts exactly where `prev` ended (the
    /// sequentiality criterion used for Table I's "Seq. %").
    pub fn follows(&self, prev: &IoRequest) -> bool {
        self.lpn == prev.end_lpn()
    }

    /// Request size in bytes, for a given page size.
    pub fn bytes(&self, page_bytes: u32) -> u64 {
        self.pages as u64 * page_bytes as u64
    }
}

/// A named, time-ordered request sequence.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    /// Display name ("Fin1", "Fin2", "Mix", or a file name).
    pub name: String,
    /// Requests in non-decreasing arrival order.
    pub requests: Vec<IoRequest>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            requests: Vec::new(),
        }
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Span from the first to the last arrival.
    pub fn duration(&self) -> SimDuration {
        match (self.requests.first(), self.requests.last()) {
            (Some(f), Some(l)) => l.at.saturating_since(f.at),
            _ => SimDuration::ZERO,
        }
    }

    /// Largest page address touched plus one (minimum device size needed).
    pub fn address_span(&self) -> u64 {
        self.requests.iter().map(|r| r.end_lpn()).max().unwrap_or(0)
    }

    /// Append a request, keeping arrival order (clamps a regressing
    /// timestamp to the previous one — real traces contain small
    /// out-of-order artefacts).
    pub fn push(&mut self, mut req: IoRequest) {
        if let Some(last) = self.requests.last() {
            if req.at < last.at {
                req.at = last.at;
            }
        }
        self.requests.push(req);
    }

    /// Merge several traces into one, interleaved by arrival time (stable
    /// for equal timestamps) — multi-tenant streams sharing one device, the
    /// Figure 2 situation.
    pub fn merge(traces: &[&Trace], name: impl Into<String>) -> Trace {
        let mut out = Trace::new(name);
        let mut cursors = vec![0usize; traces.len()];
        loop {
            let mut best: Option<(usize, SimTime)> = None;
            for (i, t) in traces.iter().enumerate() {
                if let Some(r) = t.requests.get(cursors[i]) {
                    if best.map(|(_, at)| r.at < at).unwrap_or(true) {
                        best = Some((i, r.at));
                    }
                }
            }
            let Some((i, _)) = best else { break };
            out.push(traces[i].requests[cursors[i]]);
            cursors[i] += 1;
        }
        out
    }

    /// Keep only the requests with index in `range` (e.g. the warm half of a
    /// trace), preserving timestamps.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Trace {
        let end = range.end.min(self.requests.len());
        let start = range.start.min(end);
        Trace {
            name: format!("{}[{}..{}]", self.name, start, end),
            requests: self.requests[start..end].to_vec(),
        }
    }

    /// Multiply the arrival rate by `factor` (2.0 = twice as fast), keeping
    /// the first request's arrival time as the origin.
    pub fn scale_rate(&mut self, factor: f64) {
        let f = factor.max(1e-9);
        let origin = self.requests.first().map(|r| r.at).unwrap_or(SimTime::ZERO);
        for r in &mut self.requests {
            let offset = r.at.saturating_since(origin);
            r.at = origin + SimDuration::from_secs_f64(offset.as_secs_f64() / f);
        }
    }

    /// Shift every arrival forward by `delta` (scheduling a trace to start
    /// after another's warm-up, for instance).
    pub fn shift(&mut self, delta: SimDuration) {
        for r in &mut self.requests {
            r.at += delta;
        }
    }

    /// Restrict every request to the given address space by wrapping page
    /// addresses modulo `pages` (used to replay a large-footprint trace on a
    /// scaled-down simulated device; preserves locality structure).
    pub fn wrap_addresses(&mut self, pages: u64) {
        assert!(pages > 0);
        for r in &mut self.requests {
            let max_pages = pages.min(u32::MAX as u64) as u32;
            r.pages = r.pages.min(max_pages).max(1);
            r.lpn %= pages;
            if r.end_lpn() > pages {
                r.lpn = pages - r.pages as u64;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at_us: u64, lpn: u64, pages: u32, op: Op) -> IoRequest {
        IoRequest {
            at: SimTime::from_micros(at_us),
            lpn,
            pages,
            op,
        }
    }

    #[test]
    fn follows_detects_contiguity() {
        let a = req(0, 10, 4, Op::Write);
        let b = req(1, 14, 2, Op::Write);
        let c = req(2, 17, 1, Op::Write);
        assert!(b.follows(&a));
        assert!(!c.follows(&b));
        assert_eq!(a.bytes(4096), 16384);
    }

    #[test]
    fn push_keeps_time_monotone() {
        let mut t = Trace::new("t");
        t.push(req(100, 0, 1, Op::Read));
        t.push(req(50, 1, 1, Op::Read)); // regressing timestamp clamps
        assert_eq!(t.requests[1].at, SimTime::from_micros(100));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duration_and_span() {
        let mut t = Trace::new("t");
        assert_eq!(t.duration(), SimDuration::ZERO);
        t.push(req(10, 5, 3, Op::Write));
        t.push(req(40, 100, 2, Op::Read));
        assert_eq!(t.duration(), SimDuration::from_micros(30));
        assert_eq!(t.address_span(), 102);
    }

    #[test]
    fn merge_interleaves_by_time() {
        let mut a = Trace::new("a");
        a.push(req(0, 0, 1, Op::Write));
        a.push(req(20, 1, 1, Op::Write));
        let mut b = Trace::new("b");
        b.push(req(10, 100, 1, Op::Read));
        b.push(req(30, 101, 1, Op::Read));
        let m = Trace::merge(&[&a, &b], "ab");
        let lpns: Vec<u64> = m.requests.iter().map(|r| r.lpn).collect();
        assert_eq!(lpns, vec![0, 100, 1, 101]);
        for w in m.requests.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn merge_is_stable_for_equal_timestamps() {
        let mut a = Trace::new("a");
        a.push(req(5, 1, 1, Op::Write));
        let mut b = Trace::new("b");
        b.push(req(5, 2, 1, Op::Write));
        let m = Trace::merge(&[&a, &b], "ab");
        // Earlier-listed trace wins ties.
        assert_eq!(m.requests[0].lpn, 1);
        assert_eq!(m.requests[1].lpn, 2);
    }

    #[test]
    fn slice_clamps_and_names() {
        let mut t = Trace::new("t");
        for i in 0..10 {
            t.push(req(i, i, 1, Op::Write));
        }
        let s = t.slice(3..7);
        assert_eq!(s.len(), 4);
        assert_eq!(s.requests[0].lpn, 3);
        assert_eq!(t.slice(8..100).len(), 2);
        assert_eq!(t.slice(20..30).len(), 0);
    }

    #[test]
    fn scale_rate_compresses_spans() {
        let mut t = Trace::new("t");
        t.push(req(100, 0, 1, Op::Write));
        t.push(req(300, 1, 1, Op::Write));
        t.scale_rate(2.0);
        assert_eq!(t.requests[0].at, SimTime::from_micros(100)); // origin fixed
        assert_eq!(t.requests[1].at, SimTime::from_micros(200));
        t.scale_rate(0.5); // slow back down
        assert_eq!(t.requests[1].at, SimTime::from_micros(300));
    }

    #[test]
    fn shift_moves_all_arrivals() {
        let mut t = Trace::new("t");
        t.push(req(1, 0, 1, Op::Write));
        t.push(req(2, 1, 1, Op::Write));
        t.shift(SimDuration::from_micros(10));
        assert_eq!(t.requests[0].at, SimTime::from_micros(11));
        assert_eq!(t.requests[1].at, SimTime::from_micros(12));
    }

    #[test]
    fn wrap_addresses_fits_device() {
        let mut t = Trace::new("t");
        t.push(req(0, 1000, 4, Op::Write));
        t.push(req(1, 62, 8, Op::Write)); // end 70 > 64: shifted back
        t.wrap_addresses(64);
        for r in &t.requests {
            assert!(r.end_lpn() <= 64, "{r:?}");
            assert!(r.pages >= 1);
        }
        assert_eq!(t.requests[0].lpn, 1000 % 64);
    }
}
