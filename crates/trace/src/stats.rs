//! Trace statistics — the Table I columns, recomputed from any trace.
//!
//! Used both to report on synthetic traces (calibration against the paper's
//! Table I is an integration test) and to characterise user-supplied SPC
//! files before replay.

use crate::record::{Op, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Summary statistics of a trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Trace name.
    pub name: String,
    /// Number of requests.
    pub requests: usize,
    /// Mean request size in KB (page-quantised; page = 4 KB).
    pub avg_req_kb: f64,
    /// Mean request size in pages.
    pub avg_req_pages: f64,
    /// Percentage of requests that are writes.
    pub write_pct: f64,
    /// Percentage of requests that start exactly where the previous request
    /// ended (Table I's "Seq. %").
    pub seq_pct: f64,
    /// Mean interarrival time in milliseconds.
    pub avg_interarrival_ms: f64,
    /// Percentage of requests that are TRIMs.
    pub trim_pct: f64,
    /// Distinct pages touched.
    pub unique_pages: u64,
    /// Highest page address touched + 1.
    pub footprint_pages: u64,
}

impl TraceStats {
    /// Compute statistics (assumes 4 KB pages for the KB column).
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_with_page(trace, 4096)
    }

    /// Compute statistics with an explicit page size.
    pub fn from_trace_with_page(trace: &Trace, page_bytes: u32) -> Self {
        let n = trace.len();
        if n == 0 {
            return TraceStats {
                name: trace.name.clone(),
                requests: 0,
                avg_req_kb: 0.0,
                avg_req_pages: 0.0,
                write_pct: 0.0,
                trim_pct: 0.0,
                seq_pct: 0.0,
                avg_interarrival_ms: 0.0,
                unique_pages: 0,
                footprint_pages: 0,
            };
        }
        let mut pages_total = 0u64;
        let mut writes = 0usize;
        let mut trims = 0usize;
        let mut seq = 0usize;
        let mut unique = HashSet::new();
        for (i, r) in trace.requests.iter().enumerate() {
            pages_total += r.pages as u64;
            match r.op {
                Op::Write => writes += 1,
                Op::Trim => trims += 1,
                Op::Read => {}
            }
            if i > 0 && r.follows(&trace.requests[i - 1]) {
                seq += 1;
            }
            for p in r.lpn..r.end_lpn() {
                unique.insert(p);
            }
        }
        let avg_req_pages = pages_total as f64 / n as f64;
        let interarrival_ms = if n > 1 {
            trace.duration().as_millis_f64() / (n - 1) as f64
        } else {
            0.0
        };
        TraceStats {
            name: trace.name.clone(),
            requests: n,
            avg_req_kb: avg_req_pages * page_bytes as f64 / 1024.0,
            avg_req_pages,
            write_pct: 100.0 * writes as f64 / n as f64,
            trim_pct: 100.0 * trims as f64 / n as f64,
            seq_pct: 100.0 * seq as f64 / n as f64,
            avg_interarrival_ms: interarrival_ms,
            unique_pages: unique.len() as u64,
            footprint_pages: trace.address_span(),
        }
    }

    /// One row in the style of the paper's Table I.
    pub fn table1_row(&self) -> String {
        format!(
            "{:<6} {:>12} {:>14.2} {:>9.1} {:>8.2} {:>22.2}",
            self.name,
            self.requests,
            self.avg_req_kb,
            self.write_pct,
            self.seq_pct,
            self.avg_interarrival_ms
        )
    }

    /// Header matching [`TraceStats::table1_row`].
    pub fn table1_header() -> String {
        format!(
            "{:<6} {:>12} {:>14} {:>9} {:>8} {:>22}",
            "Trace", "Requests", "AvgReq(KB)", "Write(%)", "Seq(%)", "AvgInterarrival(ms)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::IoRequest;
    use fc_simkit::SimTime;

    fn req(at_ms: u64, lpn: u64, pages: u32, op: Op) -> IoRequest {
        IoRequest {
            at: SimTime::from_millis(at_ms),
            lpn,
            pages,
            op,
        }
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::from_trace(&Trace::new("e"));
        assert_eq!(s.requests, 0);
        assert_eq!(s.avg_req_kb, 0.0);
        assert_eq!(s.footprint_pages, 0);
    }

    #[test]
    fn hand_built_trace_statistics() {
        let mut t = Trace::new("hand");
        t.push(req(0, 0, 2, Op::Write)); // pages 0,1
        t.push(req(10, 2, 2, Op::Write)); // sequential, pages 2,3
        t.push(req(30, 100, 1, Op::Read)); // random
        t.push(req(60, 0, 1, Op::Write)); // revisit page 0
        let s = TraceStats::from_trace(&t);
        assert_eq!(s.requests, 4);
        assert!((s.avg_req_pages - 1.5).abs() < 1e-12);
        assert!((s.avg_req_kb - 6.0).abs() < 1e-12);
        assert!((s.write_pct - 75.0).abs() < 1e-12);
        // 1 of 3 transitions sequential → 25% of 4 requests.
        assert!((s.seq_pct - 25.0).abs() < 1e-12);
        assert!((s.avg_interarrival_ms - 20.0).abs() < 1e-12);
        assert_eq!(s.unique_pages, 5); // 0,1,2,3,100
        assert_eq!(s.footprint_pages, 101);
    }

    #[test]
    fn table1_row_formats() {
        let mut t = Trace::new("Fin1");
        t.push(req(0, 0, 1, Op::Write));
        let s = TraceStats::from_trace(&t);
        let row = s.table1_row();
        assert!(row.starts_with("Fin1"));
        assert_eq!(
            TraceStats::table1_header().split_whitespace().count(),
            row.split_whitespace().count()
        );
    }
}
