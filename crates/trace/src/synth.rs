//! Calibrated synthetic workload generation.
//!
//! The paper evaluates on two SPC financial traces (Fin1 write-dominant,
//! Fin2 read-dominant) and one synthetic mixed trace (Table I). The real
//! traces are not redistributable, so [`SyntheticSpec`] generates equivalents
//! calibrated to the Table I marginals:
//!
//! | Workload | Avg req (KB) | Write % | Seq % | Interarrival (ms) |
//! |---|---|---|---|---|
//! | Fin1 | 4.38 | 91 | 2.0  | 133.50 |
//! | Fin2 | 4.84 | 10 | 0.20 | 64.53  |
//! | Mix  | 3.16 | 50 | 50   | 199.91 |
//!
//! plus the two structural properties the paper's design arguments rest on:
//!
//! * **block-level temporal locality** — "there are many popular sectors
//!   which are updated frequently" (Section I): random targets are drawn
//!   Zipf-skewed over *logical blocks*, then offset within the block, so hot
//!   blocks see repeated page accesses — the locality LAR's popularity
//!   counter exploits;
//! * **interleaved sequential streams** — Figure 2's pattern, where several
//!   tasks' sequential writes interleave at the device: with
//!   `interleave_streams > 1`, sequential continuations round-robin across
//!   independent streams.
//!
//! Request sizes are whole pages (the device's unit), so a 4.38 KB average
//! quantises to ≈ 1.1 pages of 4 KB; trace statistics report both.

use crate::record::{IoRequest, Op, Trace};
use fc_simkit::rng::Zipf;
use fc_simkit::{DetRng, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Specification of a synthetic workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Workload name ("Fin1", "Fin2", "Mix", …).
    pub name: String,
    /// Number of requests to generate.
    pub requests: usize,
    /// Logical address space to cover, in pages.
    pub address_pages: u64,
    /// Fraction of requests that are writes.
    pub write_frac: f64,
    /// Target fraction of requests that continue the previous request
    /// (Table I's "Seq. %"). With one stream this is matched directly.
    pub seq_frac: f64,
    /// Mean request size in pages (>= 1).
    pub mean_req_pages: f64,
    /// Mean exponential interarrival time.
    pub mean_interarrival: SimDuration,
    /// Zipf skew over logical blocks for the random component (0 = uniform).
    pub zipf_theta: f64,
    /// Pages per logical block (locality granularity; match the SSD).
    pub pages_per_block: u32,
    /// Number of concurrent sequential streams (> 1 interleaves, Figure 2).
    pub interleave_streams: usize,
    /// Hot-set drift: the Zipf rank→block mapping shifts this many times
    /// over the trace (1 = static hot set). Real OLTP popularity migrates,
    /// which is what separates recency- from frequency-based replacement.
    pub drift_epochs: usize,
}

impl SyntheticSpec {
    /// Fin1-like: write-dominant OLTP with strong temporal locality.
    pub fn fin1(address_pages: u64) -> Self {
        SyntheticSpec {
            name: "Fin1".into(),
            requests: 50_000,
            address_pages,
            write_frac: 0.91,
            seq_frac: 0.02,
            mean_req_pages: 4.38 / 4.0,
            mean_interarrival: SimDuration::from_micros(133_500),
            zipf_theta: 0.95,
            pages_per_block: 64,
            interleave_streams: 1,
            drift_epochs: 1,
        }
    }

    /// Fin2-like: read-dominant OLTP.
    pub fn fin2(address_pages: u64) -> Self {
        SyntheticSpec {
            name: "Fin2".into(),
            requests: 50_000,
            address_pages,
            write_frac: 0.10,
            seq_frac: 0.002,
            mean_req_pages: 4.84 / 4.0,
            mean_interarrival: SimDuration::from_micros(64_530),
            zipf_theta: 0.95,
            pages_per_block: 64,
            interleave_streams: 1,
            drift_epochs: 1,
        }
    }

    /// Mix: half reads, half sequential, moderate locality — the paper's
    /// synthetic workload for studying replacement behaviour.
    pub fn mix(address_pages: u64) -> Self {
        SyntheticSpec {
            name: "Mix".into(),
            requests: 50_000,
            address_pages,
            write_frac: 0.50,
            seq_frac: 0.50,
            mean_req_pages: 1.0,
            mean_interarrival: SimDuration::from_micros(199_910),
            zipf_theta: 0.6,
            pages_per_block: 64,
            interleave_streams: 1,
            drift_epochs: 1,
        }
    }

    /// All three Table I workloads for an address space.
    pub fn table1(address_pages: u64) -> [SyntheticSpec; 3] {
        [
            SyntheticSpec::fin1(address_pages),
            SyntheticSpec::fin2(address_pages),
            SyntheticSpec::mix(address_pages),
        ]
    }

    /// Builder: override the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Builder: override the interleaving degree (Figure 2 experiments).
    pub fn with_streams(mut self, n: usize) -> Self {
        self.interleave_streams = n.max(1);
        self
    }

    /// Builder: scale arrival intensity (2.0 = twice the arrival rate).
    pub fn with_rate_factor(mut self, factor: f64) -> Self {
        let f = factor.max(1e-6);
        self.mean_interarrival =
            SimDuration::from_secs_f64(self.mean_interarrival.as_secs_f64() / f);
        self
    }

    /// Generate the trace, deterministically in (spec, seed).
    pub fn generate(&self, seed: u64) -> Trace {
        assert!(self.address_pages >= self.pages_per_block as u64 * 2);
        let mut rng = DetRng::new(seed);
        let blocks = self.address_pages / self.pages_per_block as u64;
        let zipf = Zipf::new(blocks, self.zipf_theta.clamp(0.0, 0.999));
        let streams = self.interleave_streams.max(1);
        // Per-stream cursor for sequential continuations.
        let mut cursors: Vec<Option<u64>> = vec![None; streams];
        let mut next_stream = 0usize;
        let mut trace = Trace::new(self.name.clone());
        let mut now = SimTime::ZERO;
        let mut prev_end: Option<u64> = None;

        for _ in 0..self.requests {
            now += SimDuration::from_secs_f64(rng.exp(self.mean_interarrival.as_secs_f64()));
            let mean_pages = self.mean_req_pages.max(1.0);
            let pages = if mean_pages <= 2.0 {
                // Bernoulli second page hits the fractional mean exactly
                // (e.g. 1.095 pages = the paper's 4.38 KB at 4 KB pages).
                1 + u64::from(rng.chance(mean_pages - 1.0))
            } else {
                rng.run_length(mean_pages)
            }
            .min(self.pages_per_block as u64) as u32;
            let op = if rng.chance(self.write_frac) {
                Op::Write
            } else {
                Op::Read
            };

            let epoch = if self.drift_epochs > 1 {
                (trace.len() * self.drift_epochs / self.requests.max(1)) as u64
            } else {
                0
            };
            let sequential = prev_end.is_some() && rng.chance(self.seq_frac);
            let (lpn, used_stream) = if sequential {
                if streams == 1 {
                    (prev_end.expect("prev_end present"), None)
                } else {
                    // Round-robin across streams; each continues from its own
                    // cursor (the Figure 2 interleaving pattern).
                    let s = next_stream % streams;
                    next_stream += 1;
                    let cur =
                        cursors[s].unwrap_or_else(|| self.random_lpn_at(&zipf, &mut rng, epoch));
                    (cur, Some(s))
                }
            } else {
                (self.random_lpn_at(&zipf, &mut rng, epoch), None)
            };

            // Clamp into the address space.
            let lpn = lpn.min(self.address_pages - pages as u64);
            let end = lpn + pages as u64;
            if let Some(s) = used_stream {
                // Advance the stream; restart it elsewhere when it nears the
                // end of the address space.
                cursors[s] = Some(
                    if end + self.pages_per_block as u64 * 2 < self.address_pages {
                        end
                    } else {
                        self.random_lpn_at(&zipf, &mut rng, epoch)
                    },
                );
            }
            prev_end = Some(end % self.address_pages);
            trace.push(IoRequest {
                at: now,
                lpn,
                pages,
                op,
            });
        }
        trace
    }

    /// Draw a Zipf-hot block, scatter it over the address space with a
    /// multiplicative hash (so hot blocks are not all clustered at address
    /// zero), then a uniform offset inside the block. The drift epoch shifts
    /// which physical blocks are hot.
    fn random_lpn_at(&self, zipf: &Zipf, rng: &mut DetRng, epoch: u64) -> u64 {
        let blocks = self.address_pages / self.pages_per_block as u64;
        let rank = zipf.sample(rng);
        // The hottest ~2% of ranks are structurally hot (database roots,
        // logs) and never move; the warm mid-tail migrates between epochs.
        let head = (blocks / 50).max(8);
        let drifted = if rank < head {
            rank
        } else {
            rank.wrapping_add(epoch.wrapping_mul(0x0000_DEAD_BEEF_CAFE))
        };
        let block = drifted.wrapping_mul(0x9E37_79B9_7F4A_7C15) % blocks;
        let offset = rng.below(self.pages_per_block as u64);
        block * self.pages_per_block as u64 + offset
    }
}

/// Parameters for a short-lived-file workload (Section III.A: "Short lived
/// files which can be buffered in memory are often never really written to
/// SSD. The files are removed and purged from the buffer before they are
/// pushed to SSD. Such short lived files appear to be relatively common in
/// Unix systems").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShortLivedSpec {
    /// Number of create/delete file cycles.
    pub files: usize,
    /// File size in pages.
    pub file_pages: u32,
    /// Mean time between the file's write and its deletion.
    pub lifetime: SimDuration,
    /// Mean time between file creations.
    pub mean_interarrival: SimDuration,
    /// Address space in pages.
    pub address_pages: u64,
    /// Fraction of long-lived background writes interleaved between files.
    pub background_frac: f64,
}

impl Default for ShortLivedSpec {
    fn default() -> Self {
        ShortLivedSpec {
            files: 2_000,
            file_pages: 8,
            lifetime: SimDuration::from_millis(200),
            mean_interarrival: SimDuration::from_millis(50),
            address_pages: 64 * 1024,
            background_frac: 0.2,
        }
    }
}

impl ShortLivedSpec {
    /// Generate a trace of write→(delay)→trim cycles, with optional
    /// long-lived background writes. Deletions are interleaved at their due
    /// times, so files live in the buffer for roughly `lifetime`.
    pub fn generate(&self, seed: u64) -> Trace {
        let mut rng = DetRng::new(seed);
        let mut trace = Trace::new("ShortLived");
        let mut now = SimTime::ZERO;
        // Pending deletions as (due, lpn, pages), kept sorted by due time.
        let mut pending: std::collections::BinaryHeap<std::cmp::Reverse<(SimTime, u64, u32)>> =
            std::collections::BinaryHeap::new();
        let slots = (self.address_pages / self.file_pages as u64).max(1);
        for _ in 0..self.files {
            now += SimDuration::from_secs_f64(rng.exp(self.mean_interarrival.as_secs_f64()));
            // Flush deletions that came due.
            while let Some(&std::cmp::Reverse((due, lpn, pages))) = pending.peek() {
                if due > now {
                    break;
                }
                pending.pop();
                trace.push(IoRequest {
                    at: due,
                    lpn,
                    pages,
                    op: Op::Trim,
                });
            }
            if rng.chance(self.background_frac) {
                // Long-lived background write (never deleted).
                let lpn = rng.below(self.address_pages - self.file_pages as u64);
                trace.push(IoRequest {
                    at: now,
                    lpn,
                    pages: 1,
                    op: Op::Write,
                });
                continue;
            }
            let slot = rng.below(slots);
            let lpn = slot * self.file_pages as u64;
            trace.push(IoRequest {
                at: now,
                lpn,
                pages: self.file_pages,
                op: Op::Write,
            });
            let due = now + SimDuration::from_secs_f64(rng.exp(self.lifetime.as_secs_f64()));
            pending.push(std::cmp::Reverse((due, lpn, self.file_pages)));
        }
        // Remaining deletions.
        let mut rest: Vec<_> = pending.into_iter().map(|r| r.0).collect();
        rest.sort_unstable();
        for (due, lpn, pages) in rest {
            trace.push(IoRequest {
                at: due.max(now),
                lpn,
                pages,
                op: Op::Trim,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::TraceStats;

    const SPACE: u64 = 1 << 16; // 64 Ki pages = 256 MiB

    #[test]
    fn deterministic_in_seed() {
        let spec = SyntheticSpec::fin1(SPACE).with_requests(500);
        let a = spec.generate(7);
        let b = spec.generate(7);
        assert_eq!(a.requests, b.requests);
        let c = spec.generate(8);
        assert_ne!(a.requests, c.requests);
    }

    #[test]
    fn zero_request_trace_is_valid() {
        for spec in SyntheticSpec::table1(SPACE) {
            let t = spec.with_requests(0).generate(1);
            assert!(t.is_empty());
            assert_eq!(t.duration(), fc_simkit::SimDuration::ZERO);
            let s = TraceStats::from_trace(&t);
            assert_eq!(s.requests, 0);
            // Every Table-I column is a defined number, never NaN.
            for v in [
                s.avg_req_kb,
                s.avg_req_pages,
                s.write_pct,
                s.seq_pct,
                s.avg_interarrival_ms,
                s.trim_pct,
            ] {
                assert!(v.is_finite(), "{}: non-finite stat {v}", s.name);
                assert_eq!(v, 0.0, "{}: empty trace must report 0.0", s.name);
            }
            assert_eq!(s.unique_pages, 0);
            assert_eq!(s.footprint_pages, 0);
        }
    }

    #[test]
    fn single_request_trace_is_valid() {
        for spec in SyntheticSpec::table1(SPACE) {
            let t = spec.with_requests(1).generate(2);
            assert_eq!(t.len(), 1);
            let s = TraceStats::from_trace(&t);
            assert_eq!(s.requests, 1);
            // One request has no interarrival gap: the stat is a defined
            // 0.0, not NaN (0/0) and not negative.
            assert!(s.avg_interarrival_ms.is_finite());
            assert_eq!(s.avg_interarrival_ms, 0.0);
            assert!(s.avg_req_pages >= 1.0);
            assert!(s.avg_req_kb.is_finite());
            // write_pct is exactly 0 or 100 for a single request.
            assert!(s.write_pct == 0.0 || s.write_pct == 100.0);
            assert_eq!(s.seq_pct, 0.0, "a lone request cannot be sequential");
            assert!(s.unique_pages >= 1);
            assert!(s.footprint_pages <= SPACE);
        }
    }

    #[test]
    fn fin1_matches_table1_marginals() {
        let t = SyntheticSpec::fin1(SPACE).with_requests(20_000).generate(1);
        let s = TraceStats::from_trace(&t);
        assert!((s.write_pct - 91.0).abs() < 2.0, "write% {}", s.write_pct);
        assert!(s.seq_pct < 5.0, "seq% {}", s.seq_pct);
        assert!(
            (s.avg_interarrival_ms - 133.5).abs() < 7.0,
            "interarrival {}",
            s.avg_interarrival_ms
        );
        assert!(
            s.avg_req_kb >= 4.0 && s.avg_req_kb < 6.5,
            "req kb {}",
            s.avg_req_kb
        );
    }

    #[test]
    fn fin2_is_read_dominant() {
        let t = SyntheticSpec::fin2(SPACE).with_requests(20_000).generate(2);
        let s = TraceStats::from_trace(&t);
        assert!((s.write_pct - 10.0).abs() < 2.0);
        assert!(s.seq_pct < 1.5);
        assert!((s.avg_interarrival_ms - 64.53).abs() < 4.0);
    }

    #[test]
    fn mix_is_half_sequential() {
        let t = SyntheticSpec::mix(SPACE).with_requests(20_000).generate(3);
        let s = TraceStats::from_trace(&t);
        assert!((s.write_pct - 50.0).abs() < 2.5);
        assert!((s.seq_pct - 50.0).abs() < 4.0, "seq% {}", s.seq_pct);
    }

    #[test]
    fn requests_stay_in_address_space() {
        for spec in SyntheticSpec::table1(SPACE) {
            let t = spec.with_requests(5_000).generate(4);
            for r in &t.requests {
                assert!(r.end_lpn() <= SPACE);
                assert!(r.pages >= 1);
            }
        }
    }

    #[test]
    fn zipf_concentrates_write_traffic() {
        let t = SyntheticSpec::fin1(SPACE).with_requests(20_000).generate(5);
        // Count accesses per block; the hottest decile should dominate.
        let mut counts = std::collections::HashMap::new();
        for r in &t.requests {
            *counts.entry(r.lpn / 64).or_insert(0u64) += 1;
        }
        let mut freqs: Vec<u64> = counts.values().copied().collect();
        freqs.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = freqs.iter().sum();
        let top10: u64 = freqs.iter().take(freqs.len() / 10 + 1).sum();
        assert!(
            top10 as f64 / total as f64 > 0.5,
            "top decile carries {:.2}",
            top10 as f64 / total as f64
        );
    }

    #[test]
    fn interleaved_streams_break_global_contiguity() {
        let base = SyntheticSpec::mix(SPACE).with_requests(10_000);
        let single = base.clone().generate(6);
        let multi = base.with_streams(4).generate(6);
        let s1 = TraceStats::from_trace(&single);
        let s4 = TraceStats::from_trace(&multi);
        assert!(
            s4.seq_pct < s1.seq_pct,
            "interleaving should reduce measured seq% ({} vs {})",
            s4.seq_pct,
            s1.seq_pct
        );
    }

    #[test]
    fn rate_factor_compresses_time() {
        let slow = SyntheticSpec::fin1(SPACE).with_requests(2_000).generate(9);
        let fast = SyntheticSpec::fin1(SPACE)
            .with_rate_factor(10.0)
            .with_requests(2_000)
            .generate(9);
        assert!(fast.duration().as_nanos() < slow.duration().as_nanos() / 5);
    }

    #[test]
    fn drift_moves_the_hot_tail_but_not_the_head() {
        let mut static_spec = SyntheticSpec::fin1(SPACE).with_requests(8_000);
        static_spec.drift_epochs = 1;
        let mut drifting = static_spec.clone();
        drifting.drift_epochs = 4;

        // Hot-block sets of the first and last quarter of each trace.
        let hot_set = |t: &crate::record::Trace, range: std::ops::Range<usize>| {
            let mut counts = std::collections::HashMap::new();
            for r in &t.requests[range] {
                *counts.entry(r.lpn / 64).or_insert(0u64) += 1;
            }
            let mut v: Vec<(u64, u64)> = counts.into_iter().map(|(b, c)| (c, b)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            v.into_iter()
                .take(50)
                .map(|(_, b)| b)
                .collect::<std::collections::HashSet<_>>()
        };
        let overlap = |t: &crate::record::Trace| {
            let n = t.requests.len();
            let early = hot_set(t, 0..n / 4);
            let late = hot_set(t, 3 * n / 4..n);
            early.intersection(&late).count()
        };
        let t_static = static_spec.generate(3);
        let t_drift = drifting.generate(3);
        assert!(
            overlap(&t_drift) < overlap(&t_static),
            "drift should churn the hot set: {} vs {}",
            overlap(&t_drift),
            overlap(&t_static)
        );
        // But some structurally-hot head blocks persist even under drift.
        assert!(overlap(&t_drift) > 0, "the stable head must survive drift");
    }

    #[test]
    fn presets_are_static_by_default() {
        for spec in SyntheticSpec::table1(SPACE) {
            assert_eq!(spec.drift_epochs, 1, "{}", spec.name);
        }
    }

    #[test]
    fn short_lived_spec_emits_matching_trims() {
        let spec = ShortLivedSpec {
            files: 500,
            ..ShortLivedSpec::default()
        };
        let t = spec.generate(5);
        let stats = crate::stats::TraceStats::from_trace(&t);
        assert!(stats.trim_pct > 20.0, "trim% {}", stats.trim_pct);
        // Every trim targets a previously written range.
        let mut written = std::collections::HashSet::new();
        for r in &t.requests {
            match r.op {
                Op::Write => {
                    written.insert(r.lpn);
                }
                Op::Trim => assert!(written.contains(&r.lpn), "trim of unwritten {r:?}"),
                Op::Read => {}
            }
        }
        // Timestamps monotone.
        for w in t.requests.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn timestamps_are_monotone() {
        let t = SyntheticSpec::mix(SPACE).with_requests(5_000).generate(10);
        for w in t.requests.windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }
}
