//! Event-stream schema validation.
//!
//! The JSONL schema is deliberately small and stable:
//!
//! ```json
//! {"t":{"sim":<u64>}|{"wall":<u64>},
//!  "component":"<non-empty>",
//!  "kind":"<non-empty>",
//!  "fields":{"<name>": <number|string|bool|[u64,...]>, ...}}
//! ```
//!
//! [`Event::from_json`] enforces all of this per line; this module wraps it
//! for whole streams and is what `examples/quickstart.rs --obs` (and CI)
//! uses to validate emitted files.

use crate::event::Event;

/// A schema violation at a specific line (1-based).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SchemaError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SchemaError {}

/// Validate a whole JSONL stream; returns the number of events on success.
/// Empty lines are rejected — a truncated write should not pass silently.
pub fn validate_jsonl(text: &str) -> Result<usize, SchemaError> {
    let events = parse_jsonl(text)?;
    Ok(events.len())
}

/// Parse and validate a whole JSONL stream into events.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, SchemaError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            return Err(SchemaError {
                line: i + 1,
                message: "blank line in event stream".into(),
            });
        }
        let ev = Event::from_json(line).map_err(|message| SchemaError {
            line: i + 1,
            message,
        })?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn accepts_a_valid_stream() {
        let (obs, ring) = Obs::ring(8);
        obs.set_sim_now(10);
        obs.emit(obs.event("ssd", "host_write").u64_field("pages", 4));
        obs.emit(
            obs.wall_event("cluster", "repl_send")
                .bool_field("dup", false),
        );
        // The pair-lifecycle events are all-string-field; make sure that
        // shape round-trips the validator too.
        obs.emit(
            obs.wall_event("cluster.node", "lifecycle")
                .str_field("from", "solo")
                .str_field("to", "resyncing")
                .str_field("cause", "peer_recovered"),
        );
        let text = ring
            .events()
            .iter()
            .map(|e| e.to_json() + "\n")
            .collect::<String>();
        assert_eq!(validate_jsonl(&text), Ok(3));
        let parsed = parse_jsonl(&text).unwrap();
        assert_eq!(parsed.len(), 3);
        assert_eq!(
            parsed[2].get("to").and_then(crate::Value::as_str),
            Some("resyncing")
        );
    }

    #[test]
    fn reports_offending_line_number() {
        let good = Event::sim(1, "a", "b").to_json();
        let text = format!("{good}\nnot json\n");
        let err = validate_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_blank_lines() {
        let good = Event::sim(1, "a", "b").to_json();
        let text = format!("{good}\n\n{good}\n");
        let err = validate_jsonl(&text).unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("blank"));
    }
}
