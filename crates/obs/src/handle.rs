//! The [`Obs`] handle: one cloneable object carrying the registry, the
//! event sink, and the current simulated time.
//!
//! Components store an `Option<Obs>` (or cache metric handles from its
//! registry) and treat `None` as "observability off". Cloning is an `Arc`
//! bump, so the same handle threads cheaply through every layer of a run.

use crate::event::{Event, Name, Stamp};
use crate::registry::{Registry, Snapshot};
use crate::sink::{EventSink, JsonLinesSink, NullSink, RingBuffer};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

struct ObsInner {
    registry: Registry,
    sink: Mutex<Box<dyn EventSink>>,
    /// Current simulated time in nanoseconds. The replay driver stores the
    /// request timestamp here so layers with no clock of their own (the SSD
    /// model, the buffer) can stamp events without threading `now` through
    /// every call.
    sim_now: AtomicU64,
}

/// Cloneable handle to one observability domain.
#[derive(Clone)]
pub struct Obs {
    inner: Arc<ObsInner>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("metrics", &self.inner.registry.len())
            .field("sim_now", &self.sim_now())
            .finish()
    }
}

impl Obs {
    /// New handle writing events into `sink`.
    pub fn new(sink: Box<dyn EventSink>) -> Self {
        Self {
            inner: Arc::new(ObsInner {
                registry: Registry::new(),
                sink: Mutex::new(sink),
                sim_now: AtomicU64::new(0),
            }),
        }
    }

    /// Handle that keeps metrics but discards events.
    pub fn null() -> Self {
        Self::new(Box::new(NullSink))
    }

    /// Handle backed by an in-memory ring of the last `capacity` events;
    /// also returns the readable buffer.
    pub fn ring(capacity: usize) -> (Self, RingBuffer) {
        let ring = RingBuffer::new(capacity);
        (Self::new(Box::new(ring.sink())), ring)
    }

    /// Handle streaming JSONL into a freshly created file at `path`.
    pub fn jsonl_file(path: &std::path::Path) -> std::io::Result<Self> {
        Ok(Self::new(Box::new(JsonLinesSink::create(path)?)))
    }

    /// The metric registry.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// Update the simulated clock (nanoseconds).
    #[inline]
    pub fn set_sim_now(&self, nanos: u64) {
        self.inner.sim_now.store(nanos, Ordering::Relaxed);
    }

    /// Current simulated clock (nanoseconds).
    #[inline]
    pub fn sim_now(&self) -> u64 {
        self.inner.sim_now.load(Ordering::Relaxed)
    }

    /// Start an event stamped with the current simulated clock. Finish it
    /// with field builders and pass it to [`Obs::emit`].
    pub fn event(&self, component: impl Into<Name>, kind: impl Into<Name>) -> Event {
        Event::sim(self.sim_now(), component, kind)
    }

    /// Start an event stamped with the current wall clock (see
    /// [`Obs::wall_now`]).
    pub fn wall_event(&self, component: impl Into<Name>, kind: impl Into<Name>) -> Event {
        Event::wall(Self::wall_now(), component, kind)
    }

    /// Wall-clock nanoseconds since the Unix epoch (0 if the system clock
    /// is before the epoch).
    pub fn wall_now() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }

    /// Send one event to the sink.
    pub fn emit(&self, ev: Event) {
        self.inner.sink.lock().unwrap().accept(&ev);
    }

    /// Snapshot the registry and emit it as a `snapshot` event at `t`.
    pub fn emit_snapshot(&self, t: Stamp) -> Snapshot {
        let snap = self.inner.registry.snapshot();
        self.emit(snap.to_event(t));
        snap
    }

    /// Flush the sink (e.g. before reading a JSONL file back).
    pub fn flush(&self) {
        self.inner.sink.lock().unwrap().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    #[test]
    fn sim_clock_stamps_events() {
        let (obs, ring) = Obs::ring(16);
        obs.set_sim_now(777);
        obs.emit(obs.event("core", "hit").u64_field("lpn", 3));
        let evs = ring.events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].t, Stamp::Sim(777));
        assert_eq!(evs[0].get("lpn").and_then(Value::as_u64), Some(3));
    }

    #[test]
    fn clones_share_registry_and_sink() {
        let (obs, ring) = Obs::ring(16);
        let clone = obs.clone();
        let c = clone.registry().counter("n");
        c.inc();
        assert_eq!(obs.registry().counter("n").get(), 1);
        clone.emit(clone.event("a", "b"));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn snapshot_event_reaches_sink() {
        let (obs, ring) = Obs::ring(4);
        obs.registry().counter("k").add(2);
        let snap = obs.emit_snapshot(Stamp::Sim(5));
        assert_eq!(snap.counter("k"), Some(2));
        let evs = ring.events();
        assert_eq!(evs[0].kind, "snapshot");
        assert_eq!(evs[0].t, Stamp::Sim(5));
    }
}
