//! # fc-obs
//!
//! Unified observability layer for the FlashCoop reproduction: a lock-cheap
//! metric registry plus a structured trace-event stream, shared by every
//! crate in the workspace (`fc-simkit`, `fc-ssd`, `flashcoop`,
//! `fc-cluster`, `fc-bench`).
//!
//! Two surfaces, one handle:
//!
//! * **Metrics** — [`Counter`], [`Gauge`], and log-bucketed [`Histogram`]
//!   (p50/p99/p999) handles registered by name in a [`Registry`]. Recording
//!   is relaxed atomics only; the registry lock is touched at registration
//!   and snapshot time. [`StatSource`] is the adapter trait the workspace's
//!   historical stats structs implement to dump into a registry.
//! * **Events** — [`Event`]`{ t: Sim|Wall, component, kind, fields }`
//!   pushed through a pluggable [`EventSink`]: in-memory [`RingBuffer`],
//!   [`JsonLinesSink`] (the `--obs out.jsonl` path), or [`NullSink`].
//!   [`SnapshotScheduler`] turns the registry into periodic `snapshot`
//!   events keyed to sim time, so counters become trajectories.
//!
//! The [`Obs`] handle ties both together and carries the current sim time,
//! letting clock-less layers (the SSD model, the buffer) stamp events.
//!
//! ```
//! use fc_obs::{Obs, Stamp};
//!
//! let (obs, ring) = Obs::ring(1024);
//! let hits = obs.registry().counter("core.buffer.hits");
//! obs.set_sim_now(1_500);
//! hits.inc();
//! obs.emit(obs.event("core", "hit").u64_field("lpn", 42));
//! obs.emit_snapshot(Stamp::Sim(1_500));
//! assert_eq!(ring.len(), 2);
//! for ev in ring.events() {
//!     fc_obs::Event::from_json(&ev.to_json()).unwrap();
//! }
//! ```

pub mod event;
pub mod handle;
pub mod json;
pub mod metric;
pub mod registry;
pub mod schedule;
pub mod schema;
pub mod sink;

pub use event::{Event, Name, Stamp, Value};
pub use handle::Obs;
pub use metric::{
    bucket_index, bucket_lower, bucket_upper, Counter, Gauge, Histogram, HistogramSummary,
    HISTOGRAM_BUCKETS,
};
pub use registry::{Metric, MetricValue, Registry, Snapshot, StatSource};
pub use schedule::SnapshotScheduler;
pub use schema::{parse_jsonl, validate_jsonl, SchemaError};
pub use sink::{EventSink, JsonLinesSink, NullSink, RingBuffer, RingSink, SharedBuf};
