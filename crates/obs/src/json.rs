//! Minimal JSON writer + parser.
//!
//! The workspace builds offline against dependency shims, so there is no
//! `serde_json`; fc-obs hand-rolls the small JSON subset its event stream
//! needs. Integers are kept in 64-bit integer representation end-to-end
//! (never routed through `f64`), so sequence numbers and RNG seeds above
//! 2^53 survive a write/parse round trip exactly.

use std::fmt::Write as _;

/// Parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer literal.
    U64(u64),
    /// Negative integer literal.
    I64(i64),
    /// Literal with a fraction or exponent.
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Key/value pairs in document order (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            Json::I64(v) => u64::try_from(*v).ok(),
            Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(v) => Some(*v as f64),
            Json::I64(v) => Some(*v as f64),
            Json::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn is_number(&self) -> bool {
        matches!(self, Json::U64(_) | Json::I64(_) | Json::F64(_))
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a JSON number for `v`. Non-finite values (which JSON cannot
/// represent) are written as `0`.
pub fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push('0');
    } else if v.fract() == 0.0 && v.abs() < 2f64.powi(53) {
        // Keep integral gauges readable ("3" not "3.0"-style surprises) and
        // exactly re-parseable.
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Error from [`parse`], with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse one complete JSON document; trailing whitespace is allowed,
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Json::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Basic-plane only: surrogate halves (which our
                            // writer never emits) are replaced.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad utf-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let v = (d as char)
                .to_digit(16)
                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
            cp = cp * 16 + v;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("bad number literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::U64(42));
        assert_eq!(parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn u64_max_survives_exactly() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, {"b": "x\ny"}, null], "c": -2.5}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("c"), Some(&Json::F64(-2.5)));
        let Json::Arr(items) = v.get("a").unwrap() else {
            panic!("a should be an array");
        };
        assert_eq!(items[0], Json::U64(1));
        assert_eq!(items[1].get("b"), Some(&Json::Str("x\ny".into())));
        assert_eq!(items[2], Json::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode→";
        let mut out = String::new();
        write_str(&mut out, nasty);
        assert_eq!(parse(&out).unwrap(), Json::Str(nasty.into()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("42 tail").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn write_f64_formats() {
        let mut s = String::new();
        write_f64(&mut s, 3.0);
        assert_eq!(s, "3");
        s.clear();
        write_f64(&mut s, 0.25);
        assert_eq!(s, "0.25");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "0");
    }
}
