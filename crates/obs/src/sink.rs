//! Pluggable event sinks: where the trace stream goes.

use crate::event::Event;
use std::collections::VecDeque;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// Consumer of the event stream. Sinks run behind the [`Obs`](crate::Obs)
/// handle's mutex, so implementations need not be internally synchronised.
pub trait EventSink: Send {
    /// Accept one event.
    fn accept(&mut self, ev: &Event);

    /// Flush any buffered output (e.g. before process exit).
    fn flush(&mut self) {}
}

/// Discards everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn accept(&mut self, _ev: &Event) {}
}

/// Bounded in-memory ring: keeps the most recent `capacity` events.
///
/// [`RingBuffer::new`] returns the shared buffer; [`RingBuffer::sink`]
/// hands out the writing end to install in an `Obs`, while the buffer
/// itself stays readable from the test/driver side.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    shared: Arc<Mutex<VecDeque<Event>>>,
    capacity: usize,
}

impl RingBuffer {
    /// New ring holding at most `capacity` events (oldest dropped first).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            shared: Arc::new(Mutex::new(VecDeque::new())),
            capacity,
        }
    }

    /// The writing end, for `Obs::new`.
    pub fn sink(&self) -> RingSink {
        RingSink { buf: self.clone() }
    }

    /// Copy of the current contents, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.shared.lock().unwrap().iter().cloned().collect()
    }

    /// Drain the buffer, returning its contents oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.shared.lock().unwrap().drain(..).collect()
    }

    pub fn len(&self) -> usize {
        self.shared.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Writing end of a [`RingBuffer`].
#[derive(Clone, Debug)]
pub struct RingSink {
    buf: RingBuffer,
}

impl EventSink for RingSink {
    fn accept(&mut self, ev: &Event) {
        let mut q = self.buf.shared.lock().unwrap();
        if q.len() == self.buf.capacity {
            q.pop_front();
        }
        q.push_back(ev.clone());
    }
}

/// Writes one JSON object per line to any [`Write`] target.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write + Send> {
    w: W,
}

impl<W: Write + Send> JsonLinesSink<W> {
    pub fn new(w: W) -> Self {
        Self { w }
    }
}

impl JsonLinesSink<io::BufWriter<std::fs::File>> {
    /// Create (truncate) `path` and stream JSONL into it.
    pub fn create(path: &std::path::Path) -> io::Result<Self> {
        Ok(Self::new(io::BufWriter::new(std::fs::File::create(path)?)))
    }
}

impl<W: Write + Send> EventSink for JsonLinesSink<W> {
    fn accept(&mut self, ev: &Event) {
        // Serialisation errors on a diagnostics stream must not take down
        // the run; drop the line instead.
        let _ = writeln!(self.w, "{}", ev.to_json());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Cloneable in-memory byte buffer implementing [`Write`] — lets tests pair
/// a [`JsonLinesSink`] with a reader handle on the same bytes.
#[derive(Clone, Debug, Default)]
pub struct SharedBuf {
    bytes: Arc<Mutex<Vec<u8>>>,
}

impl SharedBuf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        self.bytes.lock().unwrap().clone()
    }

    /// Contents as UTF-8 (panics on invalid UTF-8; JSONL output is always
    /// valid UTF-8).
    pub fn contents_string(&self) -> String {
        String::from_utf8(self.contents()).expect("JSONL output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_most_recent() {
        let ring = RingBuffer::new(2);
        let mut sink = ring.sink();
        for i in 0..5u64 {
            sink.accept(&Event::sim(i, "c", "k").u64_field("i", i));
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].t.nanos(), 3);
        assert_eq!(evs[1].t.nanos(), 4);
        assert_eq!(ring.drain().len(), 2);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let buf = SharedBuf::new();
        let mut sink = JsonLinesSink::new(buf.clone());
        sink.accept(&Event::sim(1, "a", "x"));
        sink.accept(&Event::wall(2, "b", "y").u64_field("n", 9));
        sink.flush();
        let text = buf.contents_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Event::from_json(line).unwrap();
        }
    }
}
