//! Structured trace events.
//!
//! One [`Event`] is one line of the observability stream: a timestamp (sim
//! or wall clock, nanoseconds), the component that emitted it, an event
//! kind, and a flat list of typed fields. The JSONL encoding is stable and
//! validated by [`crate::schema`]:
//!
//! ```json
//! {"t":{"sim":1500},"component":"ssd","kind":"host_write","fields":{"lpn":8,"pages":4}}
//! ```

use crate::json::{self, Json};
use std::borrow::Cow;

/// Event timestamp in nanoseconds, on either the simulated or the wall
/// clock. Simulation layers stamp [`Stamp::Sim`]; the threaded cluster
/// (which has no sim clock) stamps [`Stamp::Wall`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stamp {
    /// Simulated time, nanoseconds since replay start.
    Sim(u64),
    /// Wall-clock time, nanoseconds (process-relative or epoch-relative;
    /// only ordering within one stream is meaningful).
    Wall(u64),
}

impl Stamp {
    /// The raw nanosecond value, whichever clock it is on.
    pub fn nanos(&self) -> u64 {
        match self {
            Stamp::Sim(n) | Stamp::Wall(n) => *n,
        }
    }
}

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    /// Small fixed vectors, e.g. per-plane erase counts.
    U64s(Vec<u64>),
}

impl Value {
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64s(&self) -> Option<&[u64]> {
        match self {
            Value::U64s(v) => Some(v),
            _ => None,
        }
    }
}

/// Field and component names: `'static` on the hot path, owned when built
/// from parsed JSON or registry snapshots.
pub type Name = Cow<'static, str>;

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    pub t: Stamp,
    pub component: Name,
    pub kind: Name,
    pub fields: Vec<(Name, Value)>,
}

impl Event {
    /// New event with an explicit stamp.
    pub fn new(t: Stamp, component: impl Into<Name>, kind: impl Into<Name>) -> Self {
        Self {
            t,
            component: component.into(),
            kind: kind.into(),
            fields: Vec::new(),
        }
    }

    /// New sim-clock event.
    pub fn sim(t_nanos: u64, component: impl Into<Name>, kind: impl Into<Name>) -> Self {
        Self::new(Stamp::Sim(t_nanos), component, kind)
    }

    /// New wall-clock event.
    pub fn wall(t_nanos: u64, component: impl Into<Name>, kind: impl Into<Name>) -> Self {
        Self::new(Stamp::Wall(t_nanos), component, kind)
    }

    /// Append a field (builder style).
    pub fn field(mut self, name: impl Into<Name>, value: Value) -> Self {
        self.fields.push((name.into(), value));
        self
    }

    pub fn u64_field(self, name: impl Into<Name>, v: u64) -> Self {
        self.field(name, Value::U64(v))
    }

    pub fn f64_field(self, name: impl Into<Name>, v: f64) -> Self {
        self.field(name, Value::F64(v))
    }

    pub fn str_field(self, name: impl Into<Name>, v: impl Into<String>) -> Self {
        self.field(name, Value::Str(v.into()))
    }

    pub fn bool_field(self, name: impl Into<Name>, v: bool) -> Self {
        self.field(name, Value::Bool(v))
    }

    pub fn u64s_field(self, name: impl Into<Name>, v: Vec<u64>) -> Self {
        self.field(name, Value::U64s(v))
    }

    /// Look up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Encode as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"t\":{\"");
        let (clock, nanos) = match self.t {
            Stamp::Sim(n) => ("sim", n),
            Stamp::Wall(n) => ("wall", n),
        };
        out.push_str(clock);
        out.push_str("\":");
        out.push_str(&nanos.to_string());
        out.push_str("},\"component\":");
        json::write_str(&mut out, &self.component);
        out.push_str(",\"kind\":");
        json::write_str(&mut out, &self.kind);
        out.push_str(",\"fields\":{");
        for (i, (name, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, name);
            out.push(':');
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => json::write_f64(&mut out, *v),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => json::write_str(&mut out, s),
                Value::U64s(vs) => {
                    out.push('[');
                    for (j, v) in vs.iter().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        out.push_str(&v.to_string());
                    }
                    out.push(']');
                }
            }
        }
        out.push_str("}}");
        out
    }

    /// Decode one JSON line produced by [`Event::to_json`]. This enforces
    /// the event schema: unknown top-level keys, malformed stamps, and
    /// unsupported field value types are all errors.
    pub fn from_json(line: &str) -> Result<Event, String> {
        let doc = json::parse(line).map_err(|e| e.to_string())?;
        let Json::Obj(top) = &doc else {
            return Err("event must be a JSON object".into());
        };
        for (k, _) in top {
            if !matches!(k.as_str(), "t" | "component" | "kind" | "fields") {
                return Err(format!("unknown top-level key {k:?}"));
            }
        }
        let t = match doc.get("t") {
            Some(Json::Obj(pairs)) if pairs.len() == 1 => {
                let (clock, v) = &pairs[0];
                let nanos = v
                    .as_u64()
                    .ok_or_else(|| "stamp must be a non-negative integer".to_string())?;
                match clock.as_str() {
                    "sim" => Stamp::Sim(nanos),
                    "wall" => Stamp::Wall(nanos),
                    other => return Err(format!("unknown clock {other:?}")),
                }
            }
            _ => return Err("\"t\" must be an object with exactly one of sim/wall".into()),
        };
        let component = doc
            .get("component")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| "\"component\" must be a non-empty string".to_string())?;
        let kind = doc
            .get("kind")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| "\"kind\" must be a non-empty string".to_string())?;
        let Some(Json::Obj(raw_fields)) = doc.get("fields") else {
            return Err("\"fields\" must be an object".into());
        };
        let mut fields = Vec::with_capacity(raw_fields.len());
        for (name, value) in raw_fields {
            let v = match value {
                Json::U64(v) => Value::U64(*v),
                Json::I64(v) => Value::I64(*v),
                Json::F64(v) => Value::F64(*v),
                Json::Bool(b) => Value::Bool(*b),
                Json::Str(s) => Value::Str(s.clone()),
                Json::Arr(items) => {
                    let mut vs = Vec::with_capacity(items.len());
                    for item in items {
                        vs.push(item.as_u64().ok_or_else(|| {
                            format!("field {name:?}: arrays may only hold non-negative integers")
                        })?);
                    }
                    Value::U64s(vs)
                }
                Json::Null | Json::Obj(_) => {
                    return Err(format!("field {name:?} has an unsupported value type"));
                }
            };
            fields.push((Name::from(name.clone()), v));
        }
        Ok(Event {
            t,
            component: Name::from(component.to_string()),
            kind: Name::from(kind.to_string()),
            fields,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_everything() {
        let ev = Event::sim(1500, "ssd", "host_write")
            .u64_field("lpn", 8)
            .u64_field("seq", u64::MAX)
            .f64_field("wa", 1.25)
            .bool_field("gc", true)
            .str_field("note", "tricky \"quote\"\n")
            .u64s_field("plane_erases", vec![0, 2, 1]);
        let line = ev.to_json();
        let back = Event::from_json(&line).unwrap();
        assert_eq!(back, ev);
    }

    #[test]
    fn wall_stamp_round_trips() {
        let ev = Event::wall(42, "cluster", "repl_send");
        let back = Event::from_json(&ev.to_json()).unwrap();
        assert_eq!(back.t, Stamp::Wall(42));
        assert_eq!(back.t.nanos(), 42);
    }

    #[test]
    fn schema_violations_rejected() {
        // Not an object.
        assert!(Event::from_json("[1,2]").is_err());
        // Missing kind.
        assert!(Event::from_json(r#"{"t":{"sim":1},"component":"x","fields":{}}"#).is_err());
        // Empty component.
        assert!(
            Event::from_json(r#"{"t":{"sim":1},"component":"","kind":"k","fields":{}}"#).is_err()
        );
        // Unknown clock.
        assert!(
            Event::from_json(r#"{"t":{"tai":1},"component":"x","kind":"k","fields":{}}"#).is_err()
        );
        // Two clocks.
        assert!(Event::from_json(
            r#"{"t":{"sim":1,"wall":2},"component":"x","kind":"k","fields":{}}"#
        )
        .is_err());
        // Negative stamp.
        assert!(
            Event::from_json(r#"{"t":{"sim":-1},"component":"x","kind":"k","fields":{}}"#).is_err()
        );
        // Unknown top-level key.
        assert!(Event::from_json(
            r#"{"t":{"sim":1},"component":"x","kind":"k","fields":{},"extra":1}"#
        )
        .is_err());
        // Nested object field value.
        assert!(Event::from_json(
            r#"{"t":{"sim":1},"component":"x","kind":"k","fields":{"a":{"b":1}}}"#
        )
        .is_err());
    }

    #[test]
    fn field_lookup() {
        let ev = Event::sim(0, "c", "k")
            .u64_field("a", 1)
            .f64_field("b", 0.5);
        assert_eq!(ev.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(ev.get("b").and_then(Value::as_f64), Some(0.5));
        assert!(ev.get("missing").is_none());
    }
}
