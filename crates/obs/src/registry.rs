//! Metric registry: names → metric handles, with deterministic snapshots.
//!
//! The registry's internal map is behind a `Mutex`, but that lock is only
//! taken at registration and snapshot time. Hot paths register once (at
//! attach time), cache the returned [`Counter`]/[`Gauge`]/[`Histogram`]
//! handle, and from then on record through relaxed atomics without ever
//! touching the registry again.

use crate::event::{Event, Stamp, Value};
use crate::metric::{Counter, Gauge, Histogram, HistogramSummary};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// A registered metric of any kind.
#[derive(Clone, Debug)]
pub enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(HistogramSummary),
}

/// Name-keyed registry of metrics.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter named `name`.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind — that is
    /// a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Get or create the gauge named `name` (panics on kind mismatch).
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Get or create the histogram named `name` (panics on kind mismatch).
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut map = self.metrics.lock().unwrap();
        map.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deterministic point-in-time snapshot: metrics sorted by name, values
    /// read atomically per cell.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().unwrap();
        let values = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                (name.clone(), value)
            })
            .collect();
        Snapshot { values }
    }
}

/// Deterministically ordered snapshot of a [`Registry`].
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted ascending by name.
    pub values: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.values[i].1)
    }

    /// Convenience: counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Render as a `snapshot` event at stamp `t`. Histograms flatten to
    /// `<name>.count/.sum/.max/.p50/.p99/.p999` fields so the whole
    /// snapshot stays one flat JSONL object.
    pub fn to_event(&self, t: Stamp) -> Event {
        let mut ev = Event::new(t, "obs", "snapshot");
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => {
                    ev = ev.field(name.clone(), Value::U64(*v));
                }
                MetricValue::Gauge(v) => {
                    ev = ev.field(name.clone(), Value::F64(*v));
                }
                MetricValue::Histogram(h) => {
                    ev = ev
                        .field(format!("{name}.count"), Value::U64(h.count))
                        .field(format!("{name}.sum"), Value::U64(h.sum))
                        .field(format!("{name}.max"), Value::U64(h.max))
                        .field(format!("{name}.p50"), Value::U64(h.p50))
                        .field(format!("{name}.p99"), Value::U64(h.p99))
                        .field(format!("{name}.p999"), Value::U64(h.p999));
                }
            }
        }
        ev
    }
}

/// Anything that can dump its counters into a [`Registry`].
///
/// This is the consolidation seam for the workspace's historical stats
/// structs (`SsdStats`, `NodeStats`, `ReplicationStats`, `LatencyStats`,
/// ...): each implements `emit` by registering namespaced metrics and
/// storing its totals, so end-of-run reporting flows through one surface.
pub trait StatSource {
    /// Register and populate this source's metrics in `reg`.
    fn emit(&self, reg: &mut Registry);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_shares_cells() {
        let reg = Registry::new();
        let a = reg.counter("x.count");
        let b = reg.counter("x.count");
        a.inc();
        b.inc();
        assert_eq!(reg.counter("x.count").get(), 2);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "is a counter, not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let reg = Registry::new();
        reg.gauge("z.depth").set(3.0);
        reg.counter("a.hits").add(7);
        reg.histogram("m.lat").record(100);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.values.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.hits", "m.lat", "z.depth"]);
        assert_eq!(snap.counter("a.hits"), Some(7));
        assert_eq!(snap.gauge("z.depth"), Some(3.0));
        assert!(matches!(
            snap.get("m.lat"),
            Some(MetricValue::Histogram(h)) if h.count == 1
        ));
        assert!(snap.get("nope").is_none());
    }

    #[test]
    fn snapshot_event_flattens_histograms() {
        let reg = Registry::new();
        reg.histogram("lat").record(5);
        reg.counter("n").inc();
        let ev = reg.snapshot().to_event(Stamp::Sim(10));
        assert_eq!(ev.kind, "snapshot");
        assert_eq!(ev.get("n").and_then(Value::as_u64), Some(1));
        assert_eq!(ev.get("lat.count").and_then(Value::as_u64), Some(1));
        assert_eq!(ev.get("lat.p50").and_then(Value::as_u64), Some(7));
        // And it round-trips through JSON like any other event.
        let back = Event::from_json(&ev.to_json()).unwrap();
        assert_eq!(back, ev);
    }
}
