//! Periodic registry snapshots keyed to simulated time.
//!
//! Simulations advance time in jumps (to the next request), so a snapshot
//! "timer" can't be a thread — the replay driver polls the scheduler with
//! the current sim time and the scheduler emits one snapshot event per
//! elapsed period, stamped at the *scheduled* time (not the poll time).
//! Under a fixed clock sequence the emitted stream is therefore fully
//! deterministic.

use crate::event::Stamp;
use crate::handle::Obs;

/// Emits a registry snapshot every `period` nanoseconds of sim time.
#[derive(Clone, Debug)]
pub struct SnapshotScheduler {
    period_ns: u64,
    next_ns: u64,
}

impl SnapshotScheduler {
    /// New scheduler; the first snapshot fires once sim time reaches
    /// `period_ns`.
    pub fn new(period_ns: u64) -> Self {
        assert!(period_ns > 0, "snapshot period must be positive");
        Self {
            period_ns,
            next_ns: period_ns,
        }
    }

    /// Sim time of the next snapshot.
    pub fn next_at(&self) -> u64 {
        self.next_ns
    }

    /// Advance to `now_ns`, emitting one snapshot event per period boundary
    /// crossed. Returns how many snapshots were emitted.
    pub fn poll(&mut self, now_ns: u64, obs: &Obs) -> usize {
        let mut emitted = 0;
        while now_ns >= self.next_ns {
            obs.emit_snapshot(Stamp::Sim(self.next_ns));
            self.next_ns += self.period_ns;
            emitted += 1;
        }
        emitted
    }

    /// Emit one final snapshot stamped `now_ns` regardless of the period
    /// (end-of-run totals).
    pub fn finish(&mut self, now_ns: u64, obs: &Obs) {
        obs.emit_snapshot(Stamp::Sim(now_ns));
        self.next_ns = now_ns.saturating_add(self.period_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Obs;

    #[test]
    fn emits_one_snapshot_per_period_boundary() {
        let (obs, ring) = Obs::ring(64);
        let n = obs.registry().counter("n");
        let mut sched = SnapshotScheduler::new(100);
        assert_eq!(sched.poll(99, &obs), 0);
        n.inc();
        assert_eq!(sched.poll(100, &obs), 1);
        n.add(10);
        // Jumping over several boundaries emits a snapshot for each one.
        assert_eq!(sched.poll(350, &obs), 2);
        let evs = ring.events();
        let stamps: Vec<Stamp> = evs.iter().map(|e| e.t).collect();
        assert_eq!(
            stamps,
            vec![Stamp::Sim(100), Stamp::Sim(200), Stamp::Sim(300)]
        );
        assert_eq!(sched.next_at(), 400);
    }

    #[test]
    fn snapshots_under_fixed_clock_are_deterministic() {
        // Two identical runs produce byte-identical JSONL snapshot streams.
        let run = || {
            let (obs, ring) = Obs::ring(64);
            let hits = obs.registry().counter("core.buffer.hits");
            let depth = obs.registry().gauge("simkit.queue.depth");
            let lat = obs.registry().histogram("server.response_ns");
            let mut sched = SnapshotScheduler::new(1_000);
            for step in 1..=5u64 {
                hits.add(step);
                depth.set_u64(step % 3);
                lat.record(step * 250);
                sched.poll(step * 700, &obs);
            }
            sched.finish(3_500, &obs);
            ring.events()
                .iter()
                .map(|e| e.to_json())
                .collect::<Vec<_>>()
                .join("\n")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }
}
