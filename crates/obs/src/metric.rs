//! Lock-cheap metric primitives.
//!
//! All three metric kinds are cloneable handles over shared atomic cells:
//! recording on the hot path is a handful of relaxed atomic operations and
//! never takes a lock. Reading (snapshots) is racy-by-design — each cell is
//! read atomically but the set of cells is not read at one instant, which is
//! the standard trade for lock-free recording.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the count. Intended for [`StatSource`](crate::StatSource)
    /// implementations dumping an already-accumulated total into a registry,
    /// not for hot-path use.
    pub fn store(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Current count.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Last-value-wins instantaneous measurement, stored as `f64` bits.
#[derive(Clone, Debug)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Default for Gauge {
    fn default() -> Self {
        Self {
            bits: Arc::new(AtomicU64::new(0f64.to_bits())),
        }
    }
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Set from an integer (convenience for depth/size gauges).
    #[inline]
    pub fn set_u64(&self, v: u64) {
        self.set(v as f64);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket `i` (for `i > 0`) holds values whose
/// bit length is `i`, i.e. the range `[2^(i-1), 2^i - 1]`; bucket 0 holds
/// exactly zero. Bucket 64 therefore ends at `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

struct HistogramCells {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// Log2-bucketed histogram for latency/size distributions.
///
/// Recording is two relaxed `fetch_add`s plus a `fetch_max`; quantiles are
/// resolved at read time by a cumulative walk over the 65 buckets and report
/// the *upper bound* of the bucket holding the nearest-rank sample, so a
/// reported p99 is an overestimate by at most 2x (one bucket's width).
#[derive(Clone)]
pub struct Histogram {
    cells: Arc<HistogramCells>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            cells: Arc::new(HistogramCells {
                counts: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish()
    }
}

/// Bucket index for a value: 0 for 0, otherwise the bit length of `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    match i {
        0 => 0,
        1 => 1,
        _ => 1u64 << (i - 1),
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let c = &self.cells;
        c.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        // Wrapping on overflow: the sum of 2^64 nanoseconds is ~584 years of
        // recorded latency, acceptable for a mean estimate.
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.cells.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded values (wrapping).
    pub fn sum(&self) -> u64 {
        self.cells.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded value (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.cells.max.load(Ordering::Relaxed)
    }

    /// Mean of recorded values, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank percentile (`p` in `[0, 100]`), reported as the upper
    /// bound of the bucket containing that rank. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        let counts: Vec<u64> = self
            .cells
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * total as f64).ceil().max(1.0) as u64;
        let mut cum = 0u64;
        for (i, n) in counts.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// 99.9th percentile (bucket upper bound).
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.cells
            .counts
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_upper(i), n))
            })
            .collect()
    }

    /// Immutable summary used by registry snapshots.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
            p50: self.p50(),
            p99: self.p99(),
            p999: self.p999(),
            buckets: self.buckets(),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the cell");
        c.store(42);
        assert_eq!(c2.get(), 42);

        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        g.set_u64(7);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn bucket_boundaries_at_powers_of_two() {
        // Zero gets its own bucket.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper(0), 0);
        // Each edge value 2^k starts a new bucket; 2^k - 1 ends the previous.
        for k in 1..64 {
            let edge = 1u64 << k;
            assert_eq!(bucket_index(edge), k as usize + 1, "2^{k}");
            assert_eq!(bucket_index(edge - 1), k as usize, "2^{k} - 1");
            assert_eq!(bucket_upper(k as usize), edge - 1);
            assert_eq!(bucket_lower(k as usize + 1), edge);
        }
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(64), u64::MAX);
        assert_eq!(bucket_lower(64), 1u64 << 63);
    }

    #[test]
    fn histogram_records_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        let buckets = h.buckets();
        assert_eq!(buckets, vec![(0, 1), (1, 1), (u64::MAX, 1)]);
        // Nearest-rank p100 lands in the top bucket.
        assert_eq!(h.percentile(100.0), u64::MAX);
        // p1 of three samples is rank 1 → the zero bucket.
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn histogram_percentiles_nearest_rank() {
        let h = Histogram::new();
        // 99 samples in bucket [2,3], one in [1024,2047].
        for _ in 0..99 {
            h.record(3);
        }
        h.record(1500);
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 3);
        // rank ceil(0.99*100)=99 → still the low bucket.
        assert_eq!(h.p99(), 3);
        // rank ceil(0.999*100)=100 → the outlier's bucket upper bound.
        assert_eq!(h.p999(), 2047);
        assert_eq!(h.max(), 1500);
        assert_eq!(h.sum(), 99 * 3 + 1500);
    }

    #[test]
    fn count_sum_mean_agree_with_percentile_view() {
        // The loadgen reports mean latency straight from sum()/count()
        // instead of keeping a parallel tally; pin the accessors to the
        // bucket walk percentile() performs.
        let h = Histogram::new();
        let samples: Vec<u64> = (0..1000u64).map(|i| i * i % 7919).collect();
        for &s in &samples {
            h.record(s);
        }
        // count() equals the number of recorded samples and the sum of all
        // bucket counts (the population percentile() walks).
        assert_eq!(h.count(), samples.len() as u64);
        let bucket_total: u64 = h.buckets().iter().map(|&(_, n)| n).sum();
        assert_eq!(h.count(), bucket_total);
        // sum()/mean() match the exact tallies.
        let exact_sum: u64 = samples.iter().sum();
        assert_eq!(h.sum(), exact_sum);
        let exact_mean = exact_sum as f64 / samples.len() as f64;
        assert!((h.mean() - exact_mean).abs() < 1e-9);
        // The mean is consistent with the bucketed distribution: it lies
        // within [p0 lower bound, p100 upper bound], and p100's bucket
        // contains max().
        assert!(h.mean() >= 0.0 && h.mean() <= h.percentile(100.0) as f64);
        let max = samples.iter().copied().max().unwrap();
        assert_eq!(h.max(), max);
        assert!(h.percentile(100.0) >= max);
        assert!(h.percentile(100.0) < max.saturating_mul(2).max(2));
        // percentile() is monotone in p, so mean-vs-median sanity holds in
        // bucket terms: p50 <= 2 * mean upper bound for this spread.
        assert!(h.p50() <= h.percentile(100.0));
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p999(), 0);
        assert!(h.buckets().is_empty());
    }
}
