//! Property tests for the consistent-hash ring — the three contracts the
//! sharded gateway leans on:
//!
//! 1. **Stability** — routing is a pure function of (seed, membership):
//!    independently built rings agree on every key.
//! 2. **Balance** — virtual nodes keep per-pair shares inside a stated
//!    bound (each of 4 pairs holds 15–35 % of 1k keys at 128 vnodes; a
//!    looser 5–60 % bound holds for any 2–8 pairs at ≥64 vnodes).
//! 3. **Minimal reassignment** — membership changes move only the keys
//!    they must: removal moves exactly the victim's keys, addition moves
//!    keys only onto the newcomer.

use fc_ring::{Ring, RingConfig};
use proptest::prelude::*;

fn cfg(seed: u64, vnodes: u32) -> RingConfig {
    RingConfig {
        vnodes,
        seed,
        ..RingConfig::default()
    }
}

proptest! {
    /// Stability: two rings built from the same seed and membership (in
    /// different insertion orders) route 1k random keys identically, and
    /// routing is repeatable within one ring.
    #[test]
    fn key_to_shard_is_stable_under_seed(
        seed in any::<u64>(),
        pairs in 1u16..9,
        keys in prop::collection::vec(any::<u64>(), 100..300),
    ) {
        let a = Ring::with_pairs(cfg(seed, 64), pairs);
        let mut b = Ring::new(cfg(seed, 64));
        for id in (0..pairs).rev() {
            b.add_pair(id);
        }
        for &k in &keys {
            let owner = a.shard_of_block(k);
            prop_assert!(owner < pairs);
            prop_assert_eq!(owner, b.shard_of_block(k), "insertion order changed routing");
            prop_assert_eq!(owner, a.shard_of_block(k), "routing not repeatable");
        }
    }

    /// Balance at the deployment shape the issue names: 4 pairs, 1k
    /// sequential block keys, default 128 vnodes — every pair holds
    /// 15–35 % of the keyspace (fair share 25 %).
    #[test]
    fn four_pairs_balance_within_bound_across_1k_keys(seed in any::<u64>()) {
        let ring = Ring::with_pairs(cfg(seed, 128), 4);
        let counts = ring.assignment_counts(1_000);
        prop_assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u64>(), 1_000);
        for (pair, count) in counts {
            prop_assert!(
                (150..=350).contains(&count),
                "pair {} holds {}/1000 keys, outside the 15-35% bound (seed {})",
                pair, count, seed
            );
        }
    }

    /// Looser balance bound across cluster sizes: with ≥64 vnodes no pair
    /// is starved below a fifth of fair share or bloated past 2.4x of it.
    #[test]
    fn any_membership_balances_coarsely(seed in any::<u64>(), pairs in 2u16..9) {
        let ring = Ring::with_pairs(cfg(seed, 64), pairs);
        let fair = 1_000.0 / f64::from(pairs);
        for (pair, count) in ring.assignment_counts(1_000) {
            prop_assert!(
                (count as f64) > fair * 0.2 && (count as f64) < fair * 2.4,
                "pair {} holds {} keys vs fair share {:.0} (seed {}, pairs {})",
                pair, count, fair, seed, pairs
            );
        }
    }

    /// Minimal reassignment on removal: keys the victim did not own keep
    /// their owner; the victim's keys all land on surviving pairs.
    #[test]
    fn removal_reassigns_only_the_removed_pairs_keys(
        seed in any::<u64>(),
        pairs in 2u16..9,
        victim_pick in any::<u64>(),
        keys in prop::collection::vec(any::<u64>(), 100..300),
    ) {
        let victim = (victim_pick % u64::from(pairs)) as u16;
        let before = Ring::with_pairs(cfg(seed, 64), pairs);
        let mut after = before.clone();
        after.remove_pair(victim);
        for &k in &keys {
            let was = before.shard_of_block(k);
            let now = after.shard_of_block(k);
            if was == victim {
                prop_assert_ne!(now, victim);
            } else {
                prop_assert_eq!(
                    was, now,
                    "key {} moved {} -> {} though pair {} never owned it",
                    k, was, now, victim
                );
            }
        }
    }

    /// Minimal reassignment on addition: every key that changes owner
    /// moves *to* the new pair, and re-removing it restores the original
    /// routing exactly.
    #[test]
    fn addition_moves_keys_only_onto_the_new_pair(
        seed in any::<u64>(),
        pairs in 1u16..8,
        keys in prop::collection::vec(any::<u64>(), 100..300),
    ) {
        let before = Ring::with_pairs(cfg(seed, 64), pairs);
        let newcomer = pairs;
        let mut after = before.clone();
        after.add_pair(newcomer);
        for &k in &keys {
            let was = before.shard_of_block(k);
            let now = after.shard_of_block(k);
            prop_assert!(
                was == now || now == newcomer,
                "key {} moved {} -> {}, not onto new pair {}",
                k, was, now, newcomer
            );
        }
        after.remove_pair(newcomer);
        for &k in &keys {
            prop_assert_eq!(before.shard_of_block(k), after.shard_of_block(k));
        }
    }

    /// Round trip: `add_pair(p)` then `remove_pair(p)` restores the exact
    /// original assignment (membership, every key's owner, and an empty
    /// ring diff), while the epoch records both membership changes —
    /// the contract the elastic-membership cut-over relies on when a
    /// scale-up is later undone.
    #[test]
    fn add_then_remove_restores_the_original_assignment(
        seed in any::<u64>(),
        pairs in 1u16..8,
        pick in any::<u16>(),
        keys in prop::collection::vec(any::<u64>(), 100..300),
    ) {
        let base = Ring::with_pairs(cfg(seed, 64), pairs);
        let p = pairs + pick % 64; // any non-member id
        let mut ring = base.clone();
        let epoch0 = ring.epoch();
        ring.add_pair(p);
        prop_assert_eq!(ring.epoch(), epoch0 + 1);
        ring.remove_pair(p);
        prop_assert_eq!(ring.epoch(), epoch0 + 2);
        prop_assert_eq!(base.pairs(), ring.pairs());
        for &k in &keys {
            prop_assert_eq!(
                base.shard_of_block(k),
                ring.shard_of_block(k),
                "key {} changed owner across an add/remove round trip",
                k
            );
        }
        prop_assert!(base.moved_blocks(&ring, 500).is_empty());
    }
}
