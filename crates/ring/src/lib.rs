//! # fc-ring
//!
//! A deterministic consistent-hash ring routing logical blocks to
//! FlashCoop cooperative pairs. One pair is the paper's unit of
//! deployment; a cluster is many pairs, and this crate decides which pair
//! owns which logical block.
//!
//! Design goals, in order:
//!
//! * **Determinism** — placement is a pure function of
//!   ([`RingConfig::seed`], membership). Two rings built from the same
//!   config and the same pair set route every key identically, across
//!   processes and across runs. Nothing here consults a clock or an
//!   ambient RNG, which is what lets the sharded loadgen keep its
//!   bit-deterministic state digest.
//! * **Minimal reassignment** — membership changes only move the keys
//!   they must: removing a pair reassigns exactly the keys that pair
//!   owned; adding a pair steals keys only *for* the new pair. This is
//!   the classic consistent-hashing property, and the ring's property
//!   tests pin it.
//! * **Balance** — each pair projects [`RingConfig::vnodes`] virtual
//!   points onto the ring, smoothing the per-pair share. With the default
//!   128 vnodes, 4 pairs hold 15–35 % each over 1k sequential blocks
//!   (asserted in the property suite).
//!
//! Routing granularity is the *logical block* ([`RingConfig::block_pages`]
//! pages), not the page: all pages of one block land on one pair, so the
//! gateway's block-aligned write runs map onto single shards and the
//! destage policy still sees whole blocks.
//!
//! ```
//! use fc_ring::{Ring, RingConfig};
//!
//! let ring = Ring::with_pairs(RingConfig::default(), 4);
//! let shard = ring.shard_of_lpn(42);
//! assert!(ring.pairs().contains(&shard));
//! // Same config + membership ⇒ same routing, always.
//! let again = Ring::with_pairs(RingConfig::default(), 4);
//! assert_eq!(shard, again.shard_of_lpn(42));
//! ```

/// Ring construction knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingConfig {
    /// Virtual points per pair. More vnodes ⇒ smoother balance and finer
    /// (smaller) reassignment chunks, at O(pairs × vnodes) memory.
    pub vnodes: u32,
    /// Placement seed. Part of the cluster's identity: every router
    /// (gateway, loadgen, tests) must agree on it.
    pub seed: u64,
    /// Routing granularity in pages: lpns are routed by
    /// `lpn / block_pages`. Match the gateway's `pages_per_block` so write
    /// runs are shard-confined by construction.
    pub block_pages: u32,
}

impl Default for RingConfig {
    fn default() -> Self {
        RingConfig {
            vnodes: 128,
            seed: 0xF1A5_C009_4B10_C0DE,
            block_pages: 4,
        }
    }
}

/// SplitMix64 finalizer: the bijective avalanche mix used for both point
/// placement and key hashing. Fixed forever — changing it is a cluster-wide
/// reshuffle.
#[inline]
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over cooperative-pair ids.
///
/// Internally a sorted vector of `(position, pair)` points; a key hashes to
/// a position and is owned by the first point clockwise from it (wrapping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    cfg: RingConfig,
    /// Sorted by (position, pair) — the pair tiebreak makes collisions
    /// deterministic too.
    points: Vec<(u64, u16)>,
    /// Current membership, sorted.
    members: Vec<u16>,
    /// Membership-change count: bumped once per *effective*
    /// [`Ring::add_pair`]/[`Ring::remove_pair`] (idempotent no-ops don't
    /// count). The rebalance control plane fences requests on this.
    epoch: u64,
}

impl Ring {
    /// An empty ring (routes nothing until a pair is added).
    pub fn new(cfg: RingConfig) -> Ring {
        assert!(cfg.vnodes >= 1, "a pair needs at least one virtual node");
        assert!(cfg.block_pages >= 1, "block_pages must be at least 1");
        Ring {
            cfg,
            points: Vec::new(),
            members: Vec::new(),
            epoch: 0,
        }
    }

    /// A ring holding pairs `0..n`.
    pub fn with_pairs(cfg: RingConfig, n: u16) -> Ring {
        let mut ring = Ring::new(cfg);
        for id in 0..n {
            ring.add_pair(id);
        }
        ring
    }

    /// The construction config.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// Current membership, ascending.
    pub fn pairs(&self) -> &[u16] {
        &self.members
    }

    /// Current membership, ascending — alias of [`Ring::pairs`] under the
    /// name the membership-change (rebalance) machinery uses.
    pub fn members(&self) -> &[u16] {
        &self.members
    }

    /// Monotonic membership epoch: 0 for an empty ring, +1 per effective
    /// [`Ring::add_pair`]/[`Ring::remove_pair`]. Two rings with the same
    /// seed and membership route identically regardless of epoch; the
    /// epoch only tells membership *histories* apart, which is what the
    /// gateway's dual-ring window keys its cut-over on.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of member pairs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when no pair is a member.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Is `pair` a member?
    pub fn contains(&self, pair: u16) -> bool {
        self.members.binary_search(&pair).is_ok()
    }

    /// Position of virtual node `vnode` of `pair` under this seed.
    fn point(&self, pair: u16, vnode: u32) -> u64 {
        mix(self
            .cfg
            .seed
            .wrapping_add(mix((u64::from(pair) << 32) | u64::from(vnode))))
    }

    /// Add a pair (idempotent). Only keys now owned by `pair` change
    /// owner.
    pub fn add_pair(&mut self, pair: u16) {
        if self.contains(pair) {
            return;
        }
        let at = self.members.partition_point(|&m| m < pair);
        self.members.insert(at, pair);
        self.epoch += 1;
        for vnode in 0..self.cfg.vnodes {
            let p = (self.point(pair, vnode), pair);
            let at = self.points.partition_point(|q| q < &p);
            self.points.insert(at, p);
        }
    }

    /// Remove a pair (idempotent). Only keys previously owned by `pair`
    /// change owner.
    pub fn remove_pair(&mut self, pair: u16) {
        if let Ok(at) = self.members.binary_search(&pair) {
            self.members.remove(at);
            self.epoch += 1;
            self.points.retain(|&(_, p)| p != pair);
        }
    }

    /// The pair owning logical block `block`. Panics on an empty ring —
    /// an empty cluster has no correct answer.
    pub fn shard_of_block(&self, block: u64) -> u16 {
        assert!(!self.points.is_empty(), "routing on an empty ring");
        let pos = mix(self.cfg.seed ^ block.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // First point at or clockwise-after the key, wrapping past the top.
        let at = self.points.partition_point(|&(p, _)| p < pos);
        let (_, pair) = self.points[if at == self.points.len() { 0 } else { at }];
        pair
    }

    /// The pair owning the block containing `lpn`.
    pub fn shard_of_lpn(&self, lpn: u64) -> u16 {
        self.shard_of_block(lpn / u64::from(self.cfg.block_pages))
    }

    /// Routing granularity in pages.
    pub fn block_pages(&self) -> u32 {
        self.cfg.block_pages
    }

    /// Ring diff: the blocks in `0..blocks` whose owner differs between
    /// `self` and `to`, as `(block, old_owner, new_owner)` triples in
    /// block order. This is exactly the set a rebalance must migrate when
    /// the cluster's ring changes from `self` to `to` — consistent
    /// hashing guarantees it is minimal (only the victim's or the
    /// newcomer's blocks appear).
    ///
    /// Both rings must share a config: a diff across seeds or block
    /// geometries is a full reshuffle, not a membership change.
    pub fn moved_blocks(&self, to: &Ring, blocks: u64) -> Vec<(u64, u16, u16)> {
        assert_eq!(
            self.cfg, to.cfg,
            "ring diff requires identical configs (same seed and geometry)"
        );
        (0..blocks)
            .filter_map(|block| {
                let from = self.shard_of_block(block);
                let now = to.shard_of_block(block);
                (from != now).then_some((block, from, now))
            })
            .collect()
    }

    /// Per-pair key counts for blocks `0..blocks` — the balance diagnostic
    /// used by tests and the loadgen report. Returned in [`Ring::pairs`]
    /// order.
    pub fn assignment_counts(&self, blocks: u64) -> Vec<(u16, u64)> {
        let mut counts: Vec<(u16, u64)> = self.members.iter().map(|&m| (m, 0)).collect();
        for block in 0..blocks {
            let owner = self.shard_of_block(block);
            if let Ok(at) = self.members.binary_search(&owner) {
                counts[at].1 += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_config_same_membership_routes_identically() {
        let a = Ring::with_pairs(RingConfig::default(), 5);
        let b = Ring::with_pairs(RingConfig::default(), 5);
        for block in 0..2_000u64 {
            assert_eq!(a.shard_of_block(block), b.shard_of_block(block));
        }
    }

    #[test]
    fn insertion_order_does_not_matter() {
        let forward = Ring::with_pairs(RingConfig::default(), 6);
        let mut backward = Ring::new(RingConfig::default());
        for id in (0..6u16).rev() {
            backward.add_pair(id);
        }
        assert_eq!(forward, backward);
    }

    #[test]
    fn different_seeds_place_differently() {
        let a = Ring::with_pairs(RingConfig::default(), 4);
        let b = Ring::with_pairs(
            RingConfig {
                seed: 0xDEAD_BEEF,
                ..RingConfig::default()
            },
            4,
        );
        let moved = (0..1_000u64)
            .filter(|&k| a.shard_of_block(k) != b.shard_of_block(k))
            .count();
        assert!(moved > 250, "only {moved}/1000 keys moved under a new seed");
    }

    #[test]
    fn lpns_route_by_block() {
        let ring = Ring::with_pairs(RingConfig::default(), 4);
        let bp = u64::from(ring.block_pages());
        for block in 0..64u64 {
            let owner = ring.shard_of_block(block);
            for page in 0..bp {
                assert_eq!(ring.shard_of_lpn(block * bp + page), owner);
            }
        }
    }

    #[test]
    fn add_remove_are_idempotent_and_single_pair_owns_everything() {
        let mut ring = Ring::new(RingConfig::default());
        ring.add_pair(3);
        ring.add_pair(3);
        assert_eq!(ring.pairs(), &[3]);
        for block in 0..100u64 {
            assert_eq!(ring.shard_of_block(block), 3);
        }
        ring.remove_pair(7); // not a member: no-op
        ring.remove_pair(3);
        assert!(ring.is_empty());
    }

    #[test]
    fn removal_moves_only_the_victims_keys() {
        let before = Ring::with_pairs(RingConfig::default(), 4);
        let mut after = before.clone();
        after.remove_pair(2);
        for block in 0..4_000u64 {
            let was = before.shard_of_block(block);
            let now = after.shard_of_block(block);
            if was != 2 {
                assert_eq!(was, now, "block {block} moved but pair 2 never owned it");
            } else {
                assert_ne!(now, 2);
            }
        }
    }

    #[test]
    fn addition_moves_keys_only_to_the_newcomer() {
        let before = Ring::with_pairs(RingConfig::default(), 4);
        let mut after = before.clone();
        after.add_pair(4);
        let mut gained = 0u64;
        for block in 0..4_000u64 {
            let was = before.shard_of_block(block);
            let now = after.shard_of_block(block);
            if was != now {
                assert_eq!(now, 4, "block {block} moved to {now}, not the new pair");
                gained += 1;
            }
        }
        assert!(gained > 0, "a fifth pair must take over some keys");
    }

    #[test]
    fn assignment_counts_cover_every_block() {
        let ring = Ring::with_pairs(RingConfig::default(), 4);
        let counts = ring.assignment_counts(1_000);
        assert_eq!(counts.iter().map(|&(_, c)| c).sum::<u64>(), 1_000);
        for (pair, count) in counts {
            assert!(count > 0, "pair {pair} owns nothing");
        }
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn routing_on_an_empty_ring_panics() {
        Ring::new(RingConfig::default()).shard_of_block(0);
    }

    #[test]
    fn epoch_counts_effective_membership_changes_only() {
        let mut ring = Ring::new(RingConfig::default());
        assert_eq!(ring.epoch(), 0);
        ring.add_pair(0);
        ring.add_pair(1);
        assert_eq!(ring.epoch(), 2);
        ring.add_pair(1); // idempotent: no change, no bump
        assert_eq!(ring.epoch(), 2);
        ring.remove_pair(7); // not a member: no bump
        assert_eq!(ring.epoch(), 2);
        ring.remove_pair(0);
        assert_eq!(ring.epoch(), 3);
        assert_eq!(Ring::with_pairs(RingConfig::default(), 4).epoch(), 4);
    }

    #[test]
    fn members_is_pairs() {
        let ring = Ring::with_pairs(RingConfig::default(), 3);
        assert_eq!(ring.members(), ring.pairs());
        assert_eq!(ring.members(), &[0, 1, 2]);
    }

    #[test]
    fn moved_blocks_matches_brute_force_diff() {
        let before = Ring::with_pairs(RingConfig::default(), 4);
        let mut after = before.clone();
        after.add_pair(4);
        let diff = before.moved_blocks(&after, 2_000);
        let brute: Vec<(u64, u16, u16)> = (0..2_000u64)
            .filter_map(|b| {
                let was = before.shard_of_block(b);
                let now = after.shard_of_block(b);
                (was != now).then_some((b, was, now))
            })
            .collect();
        assert_eq!(diff, brute);
        assert!(!diff.is_empty(), "a fifth pair must take over some blocks");
        for &(_, from, to) in &diff {
            assert_ne!(from, to);
            assert_eq!(to, 4, "addition may only move blocks onto the newcomer");
        }
        // Identity diff is empty.
        assert!(before.moved_blocks(&before, 2_000).is_empty());
    }
}
