//! Wear statistics and lifetime accounting.
//!
//! "Increased erase operations due to random writes shortens the lifetime of
//! a SSD" (Section II.C.1). The simulator's wear-leveling *mechanism* is the
//! wear-aware free-block allocation in [`crate::ftl::FreePool`]; this module
//! provides the *measurement*: per-block erase distribution, imbalance, and
//! the fraction of rated endurance consumed.

use crate::nand::NandArray;
use crate::timing::TimingParams;
use serde::{Deserialize, Serialize};

/// Summary of the erase-count distribution across blocks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct WearReport {
    /// Blocks in the device.
    pub blocks: u32,
    /// Total erases performed.
    pub total_erases: u64,
    /// Minimum per-block erase count.
    pub min: u32,
    /// Maximum per-block erase count.
    pub max: u32,
    /// Mean per-block erase count.
    pub mean: f64,
    /// Population standard deviation of per-block erase counts.
    pub stddev: f64,
}

impl WearReport {
    /// Compute from the current array state.
    pub fn from_nand(nand: &NandArray) -> Self {
        let counts = nand.erase_counts();
        let blocks = counts.len() as u32;
        if counts.is_empty() {
            return WearReport::default();
        }
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        let mean = total as f64 / blocks as f64;
        let var = counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / blocks as f64;
        WearReport {
            blocks,
            total_erases: total,
            min: counts.iter().copied().min().unwrap_or(0),
            max: counts.iter().copied().max().unwrap_or(0),
            mean,
            stddev: var.sqrt(),
        }
    }

    /// Ratio of the most-worn block to the mean (1.0 = perfectly level).
    pub fn imbalance(&self) -> f64 {
        if self.mean == 0.0 {
            return 1.0;
        }
        self.max as f64 / self.mean
    }

    /// Fraction of rated endurance consumed by the most-worn block.
    pub fn lifetime_used(&self, timing: &TimingParams) -> f64 {
        self.max as f64 / timing.erase_cycles.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BlockId, Geometry};

    #[test]
    fn report_on_fresh_array_is_zero() {
        let nand = NandArray::new(Geometry::tiny());
        let r = WearReport::from_nand(&nand);
        assert_eq!(r.total_erases, 0);
        assert_eq!(r.max, 0);
        assert_eq!(r.imbalance(), 1.0);
        assert_eq!(r.lifetime_used(&TimingParams::table2()), 0.0);
    }

    #[test]
    fn report_tracks_skewed_wear() {
        let mut nand = NandArray::new(Geometry::tiny());
        for _ in 0..10 {
            nand.erase(BlockId(0), false).unwrap();
        }
        nand.erase(BlockId(1), false).unwrap();
        let r = WearReport::from_nand(&nand);
        assert_eq!(r.total_erases, 11);
        assert_eq!(r.max, 10);
        assert_eq!(r.min, 0);
        assert!(r.imbalance() > 10.0); // 10 / (11/64)
        assert!(r.stddev > 0.0);
        let used = r.lifetime_used(&TimingParams::table2());
        assert!((used - 10.0 / 100_000.0).abs() < 1e-12);
    }

    #[test]
    fn wear_aware_allocation_levels_erases() {
        use crate::ftl::{FtlConfig, FtlKind};
        use fc_simkit::DetRng;

        // Same hot/cold workload against wear-aware vs FIFO allocation;
        // wear-aware should end with a tighter erase distribution.
        let run = |wear_aware: bool| {
            let cfg = FtlConfig {
                wear_aware_alloc: wear_aware,
                ..FtlConfig::tiny_test()
            };
            let mut ftl = crate::ftl::build_ftl(FtlKind::PageLevel, Geometry::tiny(), cfg);
            let logical = ftl.logical_pages();
            let mut rng = DetRng::new(5);
            // 90% of writes hit a 10% hot region.
            for _ in 0..(logical * 30) {
                let lpn = if rng.chance(0.9) {
                    rng.below((logical / 10).max(1))
                } else {
                    rng.below(logical)
                };
                ftl.write(crate::geometry::Lpn(lpn), 1);
            }
            WearReport::from_nand(ftl.nand())
        };
        let aware = run(true);
        let fifo = run(false);
        assert!(aware.total_erases > 0 && fifo.total_erases > 0);
        assert!(
            aware.imbalance() <= fifo.imbalance() + 0.25,
            "wear-aware imbalance {} vs fifo {}",
            aware.imbalance(),
            fifo.imbalance()
        );
    }
}
