//! The physical NAND array.
//!
//! Models the constraints of Section II.A that every FTL must respect:
//!
//! * pages are programmed and read individually, blocks erased as a whole;
//! * a page can only be programmed when **free** — no in-place update; an
//!   overwritten page is *invalidated* and reclaimed later by erasing its
//!   block;
//! * a block must hold no valid pages when erased (the erasing FTL is
//!   responsible for migrating them first) — enforced here with a check so an
//!   FTL bug loses data loudly, not silently;
//! * every erase increments the block's wear counter.
//!
//! The array stores, per valid physical page, the LPN it holds. This lets GC
//! routines discover live pages without a reverse-map in every FTL, exactly
//! like the out-of-band (OOB) metadata area real flash pages carry
//! (Section II.A: "a metadata area for storing identification, page state and
//! ECC information").

use crate::geometry::{BlockId, Geometry, Lpn, Ppn};
use serde::{Deserialize, Serialize};

/// State of one physical page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Holds live data for some LPN.
    Valid,
    /// Held data that has since been overwritten elsewhere; space is dead
    /// until the block is erased.
    Invalid,
}

/// One erase block.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Block {
    states: Vec<PageState>,
    /// OOB metadata: which LPN each valid page holds.
    owners: Vec<Option<Lpn>>,
    /// Next page for append-style programming.
    write_ptr: u32,
    valid_pages: u32,
    erase_count: u32,
}

impl Block {
    fn new(pages: u32) -> Self {
        Block {
            states: vec![PageState::Free; pages as usize],
            owners: vec![None; pages as usize],
            write_ptr: 0,
            valid_pages: 0,
            erase_count: 0,
        }
    }
}

/// Errors surfaced by the physical layer; any of these indicates an FTL bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NandError {
    /// Attempt to program a page that is not free.
    ProgramNotFree { ppn: Ppn },
    /// Append-programming a block that has no free page left.
    BlockFull { block: BlockId },
    /// Erasing a block that still holds valid pages.
    EraseWithValidPages { block: BlockId, valid: u32 },
    /// Reading a page that holds no valid data.
    ReadInvalid { ppn: Ppn },
    /// The block has consumed its rated erase cycles; it must be retired.
    WornOut { block: BlockId },
}

impl std::fmt::Display for NandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NandError::ProgramNotFree { ppn } => {
                write!(
                    f,
                    "program of non-free page {ppn:?} (in-place update attempted)"
                )
            }
            NandError::BlockFull { block } => write!(f, "append to full block {block:?}"),
            NandError::EraseWithValidPages { block, valid } => {
                write!(f, "erase of block {block:?} holding {valid} valid pages")
            }
            NandError::ReadInvalid { ppn } => write!(f, "read of non-valid page {ppn:?}"),
            NandError::WornOut { block } => {
                write!(f, "block {block:?} exceeded its rated erase cycles")
            }
        }
    }
}

impl std::error::Error for NandError {}

/// The physical array: blocks of pages plus wear counters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NandArray {
    geo: Geometry,
    blocks: Vec<Block>,
    total_erases: u64,
    total_programs: u64,
    /// Rated erase cycles per block; `None` disables endurance enforcement
    /// (the default — Table II's 100 K cycles never trigger in simulation
    /// timescales, so wear-out runs opt in with a low limit).
    endurance_limit: Option<u32>,
}

impl NandArray {
    /// A fully-erased array with the given geometry.
    pub fn new(geo: Geometry) -> Self {
        let blocks = (0..geo.blocks_total())
            .map(|_| Block::new(geo.pages_per_block))
            .collect();
        NandArray {
            geo,
            blocks,
            total_erases: 0,
            total_programs: 0,
            endurance_limit: None,
        }
    }

    /// Enforce a rated erase-cycle limit: once a block has been erased this
    /// many times, further erases fail with [`NandError::WornOut`] and the
    /// FTL must retire the block ("After wearing out, flash memory cells can
    /// no longer store data", Section II.A).
    pub fn set_endurance_limit(&mut self, cycles: u32) {
        self.endurance_limit = Some(cycles.max(1));
    }

    /// Device geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// State of a physical page.
    pub fn page_state(&self, ppn: Ppn) -> PageState {
        let b = self.geo.block_of(ppn);
        let p = self.geo.page_of(ppn);
        self.blocks[b.0 as usize].states[p as usize]
    }

    /// LPN stored in a valid physical page (None if not valid).
    pub fn page_owner(&self, ppn: Ppn) -> Option<Lpn> {
        let b = self.geo.block_of(ppn);
        let p = self.geo.page_of(ppn);
        self.blocks[b.0 as usize].owners[p as usize]
    }

    /// Number of valid pages in `block`.
    pub fn valid_pages(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].valid_pages
    }

    /// Number of invalid (dead) pages in `block`.
    pub fn invalid_pages(&self, block: BlockId) -> u32 {
        let b = &self.blocks[block.0 as usize];
        b.states
            .iter()
            .filter(|s| matches!(s, PageState::Invalid))
            .count() as u32
    }

    /// Number of still-free pages in `block` (append headroom).
    pub fn free_pages(&self, block: BlockId) -> u32 {
        self.geo.pages_per_block - self.blocks[block.0 as usize].write_ptr
    }

    /// Append-program the next free page of `block` with data for `lpn`.
    /// Returns the programmed PPN. Respects NAND's in-order programming rule.
    pub fn program_append(&mut self, block: BlockId, lpn: Lpn) -> Result<Ppn, NandError> {
        let pages = self.geo.pages_per_block;
        let blk = &mut self.blocks[block.0 as usize];
        if blk.write_ptr >= pages {
            return Err(NandError::BlockFull { block });
        }
        let page = blk.write_ptr;
        debug_assert_eq!(blk.states[page as usize], PageState::Free);
        blk.states[page as usize] = PageState::Valid;
        blk.owners[page as usize] = Some(lpn);
        blk.write_ptr += 1;
        blk.valid_pages += 1;
        self.total_programs += 1;
        Ok(self.geo.ppn(block, page))
    }

    /// Program a *specific* page offset of `block` (block-mapped FTLs place
    /// page `j` of a logical block at physical offset `j`). The page must be
    /// free. Relaxes strict in-order programming, as MLC-era block-mapped FTL
    /// models conventionally do; `write_ptr` advances past the programmed
    /// page so appends and placed writes can be mixed.
    pub fn program_at(&mut self, block: BlockId, page: u32, lpn: Lpn) -> Result<Ppn, NandError> {
        let ppn = self.geo.ppn(block, page);
        let blk = &mut self.blocks[block.0 as usize];
        if blk.states[page as usize] != PageState::Free {
            return Err(NandError::ProgramNotFree { ppn });
        }
        blk.states[page as usize] = PageState::Valid;
        blk.owners[page as usize] = Some(lpn);
        blk.write_ptr = blk.write_ptr.max(page + 1);
        blk.valid_pages += 1;
        self.total_programs += 1;
        Ok(ppn)
    }

    /// Mark a valid page invalid (its LPN has been rewritten elsewhere).
    /// Invalidating an already-invalid or free page is a no-op by design —
    /// FTL metadata updates may race with trims in higher layers.
    pub fn invalidate(&mut self, ppn: Ppn) {
        let b = self.geo.block_of(ppn);
        let p = self.geo.page_of(ppn) as usize;
        let blk = &mut self.blocks[b.0 as usize];
        if blk.states[p] == PageState::Valid {
            blk.states[p] = PageState::Invalid;
            blk.owners[p] = None;
            blk.valid_pages -= 1;
        }
    }

    /// Read a valid page, returning the LPN it holds.
    pub fn read(&self, ppn: Ppn) -> Result<Lpn, NandError> {
        match self.page_state(ppn) {
            PageState::Valid => Ok(self.page_owner(ppn).expect("valid page has owner")),
            _ => Err(NandError::ReadInvalid { ppn }),
        }
    }

    /// Erase `block`. Fails if it still holds valid pages (FTL must migrate
    /// them first); `force` overrides for recovery/format paths.
    pub fn erase(&mut self, block: BlockId, force: bool) -> Result<(), NandError> {
        let blk = &mut self.blocks[block.0 as usize];
        if blk.valid_pages > 0 && !force {
            return Err(NandError::EraseWithValidPages {
                block,
                valid: blk.valid_pages,
            });
        }
        if let Some(limit) = self.endurance_limit {
            if blk.erase_count >= limit {
                return Err(NandError::WornOut { block });
            }
        }
        for s in &mut blk.states {
            *s = PageState::Free;
        }
        for o in &mut blk.owners {
            *o = None;
        }
        blk.write_ptr = 0;
        blk.valid_pages = 0;
        blk.erase_count += 1;
        self.total_erases += 1;
        Ok(())
    }

    /// Wear (erase) count of `block`.
    pub fn erase_count(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erase_count
    }

    /// Total erases performed on the device.
    pub fn total_erases(&self) -> u64 {
        self.total_erases
    }

    /// Total page programs performed on the device.
    pub fn total_programs(&self) -> u64 {
        self.total_programs
    }

    /// LPNs of the valid pages in `block`, in physical page order, with the
    /// page offset each occupies. This is what GC walks to migrate live data.
    pub fn valid_entries(&self, block: BlockId) -> Vec<(u32, Lpn)> {
        let blk = &self.blocks[block.0 as usize];
        blk.states
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s {
                PageState::Valid => Some((i as u32, blk.owners[i].expect("owner"))),
                _ => None,
            })
            .collect()
    }

    /// Erase counts for every block (wear-leveling statistics input).
    pub fn erase_counts(&self) -> Vec<u32> {
        self.blocks.iter().map(|b| b.erase_count).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn array() -> NandArray {
        NandArray::new(Geometry::tiny())
    }

    #[test]
    fn fresh_array_is_all_free() {
        let a = array();
        let g = *a.geometry();
        for b in 0..g.blocks_total() {
            assert_eq!(a.valid_pages(BlockId(b)), 0);
            assert_eq!(a.free_pages(BlockId(b)), g.pages_per_block);
            assert_eq!(a.erase_count(BlockId(b)), 0);
        }
    }

    #[test]
    fn append_programs_in_order() {
        let mut a = array();
        let b = BlockId(0);
        let p0 = a.program_append(b, Lpn(10)).unwrap();
        let p1 = a.program_append(b, Lpn(11)).unwrap();
        assert_eq!(a.geometry().page_of(p0), 0);
        assert_eq!(a.geometry().page_of(p1), 1);
        assert_eq!(a.read(p0).unwrap(), Lpn(10));
        assert_eq!(a.read(p1).unwrap(), Lpn(11));
        assert_eq!(a.valid_pages(b), 2);
        assert_eq!(a.free_pages(b), 2);
    }

    #[test]
    fn append_to_full_block_fails() {
        let mut a = array();
        let b = BlockId(1);
        for i in 0..4 {
            a.program_append(b, Lpn(i)).unwrap();
        }
        assert_eq!(
            a.program_append(b, Lpn(9)),
            Err(NandError::BlockFull { block: b })
        );
    }

    #[test]
    fn program_at_rejects_in_place_update() {
        let mut a = array();
        let b = BlockId(2);
        a.program_at(b, 2, Lpn(5)).unwrap();
        let ppn = a.geometry().ppn(b, 2);
        assert_eq!(
            a.program_at(b, 2, Lpn(6)),
            Err(NandError::ProgramNotFree { ppn })
        );
    }

    #[test]
    fn program_at_advances_write_ptr_past_hole() {
        let mut a = array();
        let b = BlockId(3);
        a.program_at(b, 1, Lpn(5)).unwrap();
        // Append now continues at page 2, not page 0 (page 0 stays free —
        // real controllers would waste it; so do we).
        let ppn = a.program_append(b, Lpn(6)).unwrap();
        assert_eq!(a.geometry().page_of(ppn), 2);
    }

    #[test]
    fn invalidate_then_erase() {
        let mut a = array();
        let b = BlockId(0);
        let ppn = a.program_append(b, Lpn(1)).unwrap();
        assert_eq!(
            a.erase(b, false),
            Err(NandError::EraseWithValidPages { block: b, valid: 1 })
        );
        a.invalidate(ppn);
        assert_eq!(a.page_state(ppn), PageState::Invalid);
        assert_eq!(a.invalid_pages(b), 1);
        a.erase(b, false).unwrap();
        assert_eq!(a.page_state(ppn), PageState::Free);
        assert_eq!(a.erase_count(b), 1);
        assert_eq!(a.total_erases(), 1);
        assert_eq!(a.free_pages(b), 4);
    }

    #[test]
    fn force_erase_discards_valid_pages() {
        let mut a = array();
        let b = BlockId(0);
        a.program_append(b, Lpn(1)).unwrap();
        a.erase(b, true).unwrap();
        assert_eq!(a.valid_pages(b), 0);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut a = array();
        let b = BlockId(0);
        let ppn = a.program_append(b, Lpn(1)).unwrap();
        a.invalidate(ppn);
        a.invalidate(ppn); // no panic, no double-decrement
        assert_eq!(a.valid_pages(b), 0);
    }

    #[test]
    fn read_invalid_page_errors() {
        let mut a = array();
        let b = BlockId(0);
        let ppn = a.program_append(b, Lpn(1)).unwrap();
        a.invalidate(ppn);
        assert_eq!(a.read(ppn), Err(NandError::ReadInvalid { ppn }));
        let free_ppn = a.geometry().ppn(b, 3);
        assert_eq!(
            a.read(free_ppn),
            Err(NandError::ReadInvalid { ppn: free_ppn })
        );
    }

    #[test]
    fn valid_entries_lists_live_lpns_in_page_order() {
        let mut a = array();
        let b = BlockId(0);
        let p0 = a.program_append(b, Lpn(7)).unwrap();
        a.program_append(b, Lpn(8)).unwrap();
        a.program_append(b, Lpn(9)).unwrap();
        a.invalidate(p0);
        assert_eq!(a.valid_entries(b), vec![(1, Lpn(8)), (2, Lpn(9))]);
    }

    #[test]
    fn endurance_limit_retires_blocks() {
        let mut a = array();
        a.set_endurance_limit(3);
        for _ in 0..3 {
            a.erase(BlockId(0), false).unwrap();
        }
        assert_eq!(
            a.erase(BlockId(0), false),
            Err(NandError::WornOut { block: BlockId(0) })
        );
        // Other blocks are unaffected.
        a.erase(BlockId(1), false).unwrap();
        assert_eq!(a.total_erases(), 4);
    }

    #[test]
    fn erase_counts_vector_matches_per_block_queries() {
        let mut a = array();
        a.erase(BlockId(0), false).unwrap();
        a.erase(BlockId(0), false).unwrap();
        a.erase(BlockId(5), false).unwrap();
        let counts = a.erase_counts();
        assert_eq!(counts[0], 2);
        assert_eq!(counts[5], 1);
        assert_eq!(counts[1], 0);
    }
}
