//! Device-level statistics.
//!
//! [`SsdStats`] aggregates everything the paper's evaluation reads off the
//! device: block erases (Figure 7), the write-length distribution presented
//! to the flash (Figure 8), service latencies, and write amplification
//! (internal fragmentation / GC pressure, Section II.C).

use crate::cost::CostBreakdown;
use fc_simkit::stats::{LatencyStats, SizeHistogram};
use fc_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// Counters and distributions observed at the device interface.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SsdStats {
    /// Host-issued write requests.
    pub host_write_requests: u64,
    /// Host-issued read requests.
    pub host_read_requests: u64,
    /// Pages the host asked to write.
    pub host_pages_written: u64,
    /// Pages the host asked to read.
    pub host_pages_read: u64,
    /// Pages actually programmed into flash (host + GC/merge copies).
    pub flash_page_programs: u64,
    /// Pages read from cells (host + GC/merge copies).
    pub flash_page_reads: u64,
    /// Blocks erased.
    pub block_erases: u64,
    /// Service time of write requests.
    pub write_service: LatencyStats,
    /// Service time of read requests.
    pub read_service: LatencyStats,
    /// Length distribution of host write requests reaching the device —
    /// the Figure 8 measurement point.
    pub write_lengths: SizeHistogram,
    /// TRIM commands received.
    pub trims: u64,
    /// Pages invalidated by TRIM.
    pub trimmed_pages: u64,
}

impl SsdStats {
    /// Fresh, zeroed statistics.
    pub fn new() -> Self {
        SsdStats {
            write_lengths: SizeHistogram::new(),
            ..SsdStats::default()
        }
    }

    /// Record a completed host write.
    pub fn record_write(&mut self, pages: u32, cost: &CostBreakdown, service: SimDuration) {
        self.host_write_requests += 1;
        self.host_pages_written += pages as u64;
        self.flash_page_programs += cost.total_programs();
        self.flash_page_reads += cost.total_reads();
        self.block_erases += cost.total_erases();
        self.write_service.push(service);
        self.write_lengths.record(pages as u64);
    }

    /// Record a completed host read.
    pub fn record_read(&mut self, pages: u32, cost: &CostBreakdown, service: SimDuration) {
        self.host_read_requests += 1;
        self.host_pages_read += pages as u64;
        self.flash_page_programs += cost.total_programs();
        self.flash_page_reads += cost.total_reads();
        self.block_erases += cost.total_erases();
        self.read_service.push(service);
    }

    /// Flash pages programmed per host page written (>= 1 once GC runs;
    /// 0 when nothing has been written).
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            return 0.0;
        }
        self.flash_page_programs as f64 / self.host_pages_written as f64
    }

    /// Mean write request size in pages.
    pub fn mean_write_pages(&self) -> f64 {
        self.write_lengths.mean_pages()
    }
}

/// Dumps device totals under `ssd.*`, matching the live counter names the
/// attached device maintains (see `Ssd::attach_obs`).
impl fc_obs::StatSource for SsdStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        reg.counter("ssd.host_write_requests")
            .store(self.host_write_requests);
        reg.counter("ssd.host_read_requests")
            .store(self.host_read_requests);
        reg.counter("ssd.host_pages_written")
            .store(self.host_pages_written);
        reg.counter("ssd.host_pages_read")
            .store(self.host_pages_read);
        reg.counter("ssd.flash_page_programs")
            .store(self.flash_page_programs);
        reg.counter("ssd.flash_page_reads")
            .store(self.flash_page_reads);
        reg.counter("ssd.block_erases").store(self.block_erases);
        reg.counter("ssd.trims").store(self.trims);
        reg.counter("ssd.trimmed_pages").store(self.trimmed_pages);
        reg.gauge("ssd.write_amp").set(self.write_amplification());
        reg.gauge("ssd.mean_write_pages")
            .set(self.mean_write_pages());
        self.write_service
            .emit_with_prefix("ssd.write_service", reg);
        self.read_service.emit_with_prefix("ssd.read_service", reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_with(programs: u64, reads: u64, erases: u64) -> CostBreakdown {
        let mut c = CostBreakdown::new(1);
        for _ in 0..programs {
            c.program_on(0);
        }
        for _ in 0..reads {
            c.read_on(0);
        }
        for _ in 0..erases {
            c.erase_on(0);
        }
        c
    }

    #[test]
    fn write_recording_accumulates_everything() {
        let mut s = SsdStats::new();
        s.record_write(4, &cost_with(6, 2, 1), SimDuration::from_micros(900));
        s.record_write(1, &cost_with(1, 0, 0), SimDuration::from_micros(300));
        assert_eq!(s.host_write_requests, 2);
        assert_eq!(s.host_pages_written, 5);
        assert_eq!(s.flash_page_programs, 7);
        assert_eq!(s.flash_page_reads, 2);
        assert_eq!(s.block_erases, 1);
        assert_eq!(s.write_service.count(), 2);
        assert_eq!(s.write_lengths.writes(), 2);
        assert!((s.write_amplification() - 7.0 / 5.0).abs() < 1e-12);
        assert!((s.mean_write_pages() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn read_recording_does_not_touch_write_lengths() {
        let mut s = SsdStats::new();
        s.record_read(8, &cost_with(0, 8, 0), SimDuration::from_micros(1000));
        assert_eq!(s.host_read_requests, 1);
        assert_eq!(s.host_pages_read, 8);
        assert_eq!(s.write_lengths.writes(), 0);
        assert_eq!(s.read_service.count(), 1);
    }

    #[test]
    fn write_amplification_zero_when_empty() {
        let s = SsdStats::new();
        assert_eq!(s.write_amplification(), 0.0);
    }

    #[test]
    fn stat_source_emits_device_totals() {
        use fc_obs::StatSource;
        let mut s = SsdStats::new();
        s.record_write(4, &cost_with(6, 2, 1), SimDuration::from_micros(900));
        let mut reg = fc_obs::Registry::new();
        s.emit(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("ssd.host_write_requests"), Some(1));
        assert_eq!(snap.counter("ssd.flash_page_programs"), Some(6));
        assert_eq!(snap.counter("ssd.block_erases"), Some(1));
        assert_eq!(snap.gauge("ssd.write_amp"), Some(6.0 / 4.0));
        assert_eq!(snap.counter("ssd.write_service.count"), Some(1));
        assert_eq!(snap.gauge("ssd.write_service.max_ns"), Some(900_000.0));
    }
}
