//! The SSD device: an FTL behind a request interface with timing and stats.
//!
//! [`Ssd`] is what the rest of the workspace talks to: whole-page read/write
//! requests in, service times out, with every internal consequence (GC,
//! merges, erases) accounted to the request that triggered it. The device
//! also provides [`Ssd::precondition`] — the aging step all experiments run
//! first, because a fresh SSD hides GC costs entirely ("especially for aged
//! SSD", Section III.A).

use crate::cost::CostBreakdown;
use crate::ftl::{build_ftl, Ftl, FtlConfig, FtlKind, FtlStats};
use crate::geometry::{Geometry, Lpn};
use crate::stats::SsdStats;
use crate::timing::TimingParams;
use crate::wear::WearReport;
use fc_obs::{Counter, Gauge, Obs};
use fc_simkit::{DetRng, SimDuration};
use serde::{Deserialize, Serialize};

/// Full device configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Physical geometry.
    pub geometry: Geometry,
    /// Operation timings.
    pub timing: TimingParams,
    /// Which FTL to run.
    pub ftl: FtlKind,
    /// FTL tunables.
    pub ftl_config: FtlConfig,
}

impl SsdConfig {
    /// The evaluation default: the scaled Table II geometry with the given FTL.
    pub fn evaluation(ftl: FtlKind) -> Self {
        SsdConfig {
            geometry: Geometry::small(),
            timing: TimingParams::table2(),
            ftl,
            ftl_config: FtlConfig::default(),
        }
    }

    /// A tiny device for unit tests.
    pub fn tiny(ftl: FtlKind) -> Self {
        SsdConfig {
            geometry: Geometry::tiny(),
            timing: TimingParams::table2(),
            ftl,
            ftl_config: FtlConfig::tiny_test(),
        }
    }
}

impl Default for SsdConfig {
    fn default() -> Self {
        SsdConfig::evaluation(FtlKind::PageLevel)
    }
}

/// Cached observability handles — registered once at attach time so the
/// per-request path is relaxed atomics plus one event emission.
struct ObsHooks {
    obs: Obs,
    host_writes: Counter,
    host_reads: Counter,
    programs: Counter,
    flash_reads: Counter,
    erases: Counter,
    write_amp: Gauge,
}

/// A simulated SSD.
pub struct Ssd {
    ftl: Box<dyn Ftl + Send>,
    timing: TimingParams,
    stats: SsdStats,
    /// Erase count at the last stats reset, so aging is excluded from
    /// experiment measurements.
    erases_at_reset: u64,
    programs_at_reset: u64,
    obs: Option<ObsHooks>,
}

impl Ssd {
    /// Build a fresh (fully-erased) device.
    pub fn new(cfg: SsdConfig) -> Self {
        Ssd {
            ftl: build_ftl(cfg.ftl, cfg.geometry, cfg.ftl_config),
            timing: cfg.timing,
            stats: SsdStats::new(),
            erases_at_reset: 0,
            programs_at_reset: 0,
            obs: None,
        }
    }

    /// Attach an observability domain: device counters and the write-amp
    /// gauge register under `ssd.*`, and every host operation emits a
    /// trace event stamped with the handle's sim clock. Attach *after*
    /// [`Ssd::precondition`] so aging traffic stays out of the stream.
    pub fn attach_obs(&mut self, obs: &Obs) {
        let reg = obs.registry();
        self.obs = Some(ObsHooks {
            host_writes: reg.counter("ssd.host_write_requests"),
            host_reads: reg.counter("ssd.host_read_requests"),
            programs: reg.counter("ssd.flash_page_programs"),
            flash_reads: reg.counter("ssd.flash_page_reads"),
            erases: reg.counter("ssd.block_erases"),
            write_amp: reg.gauge("ssd.write_amp"),
            obs: obs.clone(),
        });
    }

    /// Shared event emission for host writes (single and batched). The
    /// per-plane breakdown rides on a separate `gc` event only when the
    /// operation actually triggered erases, keeping the common case to one
    /// line.
    fn obs_write(&self, lpn: Lpn, pages: u32, cost: &CostBreakdown, service: SimDuration) {
        let Some(h) = &self.obs else { return };
        h.host_writes.inc();
        h.programs.add(cost.total_programs());
        h.flash_reads.add(cost.total_reads());
        h.erases.add(cost.total_erases());
        h.write_amp.set(self.stats.write_amplification());
        h.obs.emit(
            h.obs
                .event("ssd", "host_write")
                .u64_field("lpn", lpn.0)
                .u64_field("pages", pages as u64)
                .u64_field("service_ns", service.as_nanos())
                .u64_field("programs", cost.total_programs())
                .u64_field("erases", cost.total_erases()),
        );
        if cost.total_erases() > 0 {
            h.obs.emit(
                h.obs
                    .event("ssd", "gc")
                    .u64_field("trigger_lpn", lpn.0)
                    .u64s_field("plane_erases", cost.plane_erases.clone())
                    .u64s_field("plane_programs", cost.plane_programs.clone())
                    .u64s_field("plane_reads", cost.plane_reads.clone()),
            );
        }
    }

    /// Host-visible capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.ftl.logical_pages()
    }

    /// Device geometry.
    pub fn geometry(&self) -> Geometry {
        *self.ftl.nand().geometry()
    }

    /// Operation timings.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// Which FTL the device runs.
    pub fn ftl_kind(&self) -> FtlKind {
        self.ftl.kind()
    }

    /// Write `pages` pages starting at `lpn`; returns the service time
    /// including any GC/merge work the write triggered.
    pub fn write(&mut self, lpn: Lpn, pages: u32) -> SimDuration {
        let cost = self.ftl.write(lpn, pages);
        let d = cost.service_time(&self.timing);
        self.stats.record_write(pages, &cost, d);
        self.obs_write(lpn, pages, &cost, d);
        d
    }

    /// Write several (possibly non-contiguous) runs as **one** device
    /// request: the FlashCoop flusher's sequential block flush and its
    /// small-write clustering (Section III.B.3) both reach the device this
    /// way, so striping applies across the whole batch and the write-length
    /// histogram records a single large write.
    pub fn write_batch(&mut self, runs: &[(Lpn, u32)]) -> SimDuration {
        if runs.is_empty() {
            return SimDuration::ZERO;
        }
        let planes = self.geometry().planes_total();
        let mut cost = crate::cost::CostBreakdown::new(planes);
        let mut total_pages = 0u32;
        for &(lpn, pages) in runs {
            cost.absorb(&self.ftl.write(lpn, pages));
            total_pages += pages;
        }
        let d = cost.service_time(&self.timing);
        // The batch is one scheduled write: Section III.B.3 groups small
        // flushes "into a block size write", and that grouped write is what
        // the device-level write-length distribution observes.
        self.stats.record_write(total_pages, &cost, d);
        self.obs_write(runs[0].0, total_pages, &cost, d);
        d
    }

    /// Read `pages` pages starting at `lpn`.
    pub fn read(&mut self, lpn: Lpn, pages: u32) -> SimDuration {
        let cost = self.ftl.read(lpn, pages);
        let d = cost.service_time(&self.timing);
        self.stats.record_read(pages, &cost, d);
        if let Some(h) = &self.obs {
            h.host_reads.inc();
            h.flash_reads.add(cost.total_reads());
            h.obs.emit(
                h.obs
                    .event("ssd", "host_read")
                    .u64_field("lpn", lpn.0)
                    .u64_field("pages", pages as u64)
                    .u64_field("service_ns", d.as_nanos()),
            );
        }
        d
    }

    /// TRIM `pages` pages starting at `lpn`: metadata-only on the media,
    /// charged a small controller constant.
    pub fn trim(&mut self, lpn: Lpn, pages: u32) -> SimDuration {
        let cost = self.ftl.trim(lpn, pages);
        let d = cost.service_time(&self.timing);
        self.stats.trims += 1;
        self.stats.trimmed_pages += pages as u64;
        if let Some(h) = &self.obs {
            h.obs.emit(
                h.obs
                    .event("ssd", "trim")
                    .u64_field("lpn", lpn.0)
                    .u64_field("pages", pages as u64),
            );
        }
        d
    }

    /// Device statistics since the last [`Ssd::reset_stats`].
    pub fn stats(&self) -> &SsdStats {
        &self.stats
    }

    /// FTL-internal counters (merges, GC victims, page copies) — lifetime,
    /// not reset-relative.
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.ftl_stats()
    }

    /// Block erases since the last stats reset (the Figure 7 metric).
    pub fn erases_since_reset(&self) -> u64 {
        self.ftl.nand().total_erases() - self.erases_at_reset
    }

    /// Flash page programs since the last stats reset.
    pub fn programs_since_reset(&self) -> u64 {
        self.ftl.nand().total_programs() - self.programs_at_reset
    }

    /// Opt in to endurance enforcement: blocks erased more than `cycles`
    /// times are retired by the FTL (capacity shrinks from the spare pool).
    /// The accelerated-wear path for lifetime studies; off by default.
    pub fn set_endurance_limit(&mut self, cycles: u32) {
        self.ftl.nand_mut().set_endurance_limit(cycles);
    }

    /// Wear distribution over the device's lifetime.
    pub fn wear_report(&self) -> WearReport {
        WearReport::from_nand(self.ftl.nand())
    }

    /// Zero the measurement counters (keeps all device state — used after
    /// preconditioning so experiments measure steady-state behaviour only).
    pub fn reset_stats(&mut self) {
        self.stats = SsdStats::new();
        self.erases_at_reset = self.ftl.nand().total_erases();
        self.programs_at_reset = self.ftl.nand().total_programs();
    }

    /// Age the device: fill `fill_fraction` of the logical space, writing
    /// `seq_fraction` of it as long sequential runs and the rest as scattered
    /// single pages, then overwrite a sample to fragment blocks, and reset
    /// the measurement counters.
    pub fn precondition(&mut self, fill_fraction: f64, seq_fraction: f64, rng: &mut DetRng) {
        let logical = self.logical_pages();
        let geo = self.geometry();
        let target = ((logical as f64) * fill_fraction.clamp(0.0, 1.0)) as u64;
        let seq_pages = ((target as f64) * seq_fraction.clamp(0.0, 1.0)) as u64;

        // Sequential fill from the start of the address space.
        let mut lpn = 0u64;
        let run = geo.pages_per_block as u64;
        while lpn + run <= seq_pages {
            self.write(Lpn(lpn), run as u32);
            lpn += run;
        }
        // Scattered fill over the remainder of the space.
        let random_pages = target.saturating_sub(lpn);
        let span = logical - lpn;
        for _ in 0..random_pages {
            let l = lpn + rng.below(span.max(1));
            self.write(Lpn(l), 1);
        }
        // Fragmentation pass: overwrite a sample of single pages across the
        // filled region so most blocks carry some dead pages.
        let churn = target / 4;
        for _ in 0..churn {
            let l = rng.below(target.max(1)).min(logical - 1);
            self.write(Lpn(l), 1);
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(ftl: FtlKind) -> Ssd {
        Ssd::new(SsdConfig::tiny(ftl))
    }

    #[test]
    fn write_returns_nonzero_service_time() {
        let mut d = tiny(FtlKind::PageLevel);
        let t = d.write(Lpn(0), 1);
        // One page: bus (100us) + program (200us).
        assert_eq!(t, SimDuration::from_micros(300));
        let r = d.read(Lpn(0), 1);
        assert_eq!(r, SimDuration::from_micros(125));
    }

    #[test]
    fn sequential_writes_are_faster_per_page_than_scattered_on_aged_device() {
        use fc_simkit::DetRng;
        for kind in FtlKind::ALL {
            let mut d = tiny(kind);
            let mut rng = DetRng::new(31);
            d.precondition(0.9, 0.5, &mut rng);
            let logical = d.logical_pages();
            let block = d.geometry().pages_per_block as u64;

            // Sequential: whole-block writes.
            let mut seq_time = SimDuration::ZERO;
            let seq_pages = 40 * block;
            let mut l = 0u64;
            for _ in 0..40 {
                seq_time += d.write(Lpn(l % logical), block as u32);
                l += block;
            }

            // Scattered single pages.
            let mut rnd_time = SimDuration::ZERO;
            let rnd_pages = seq_pages;
            for _ in 0..rnd_pages {
                rnd_time += d.write(Lpn(rng.below(logical)), 1);
            }

            let seq_per_page = seq_time.as_nanos() as f64 / seq_pages as f64;
            let rnd_per_page = rnd_time.as_nanos() as f64 / rnd_pages as f64;
            assert!(
                rnd_per_page > seq_per_page * 1.2,
                "{kind}: random {rnd_per_page} ns/page not slower than sequential {seq_per_page}"
            );
        }
    }

    #[test]
    fn precondition_resets_measurement_counters() {
        use fc_simkit::DetRng;
        let mut d = tiny(FtlKind::Bast);
        let mut rng = DetRng::new(3);
        d.precondition(0.8, 0.3, &mut rng);
        assert_eq!(d.stats().host_write_requests, 0);
        assert_eq!(d.erases_since_reset(), 0);
        assert_eq!(d.programs_since_reset(), 0);
        // …but the device is genuinely aged.
        assert!(d.wear_report().total_erases > 0 || d.ftl_stats().merges() > 0);
        d.write(Lpn(0), 1);
        assert_eq!(d.stats().host_write_requests, 1);
        assert!(d.programs_since_reset() >= 1);
    }

    #[test]
    fn stats_track_write_lengths() {
        let mut d = tiny(FtlKind::PageLevel);
        d.write(Lpn(0), 1);
        d.write(Lpn(4), 4);
        let h = &d.stats().write_lengths;
        assert_eq!(h.writes(), 2);
        assert!((h.frac_single_page() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_ftls_build_via_config() {
        for kind in FtlKind::ALL {
            let d = tiny(kind);
            assert_eq!(d.ftl_kind(), kind);
            assert!(d.logical_pages() > 0);
        }
    }

    #[test]
    fn trim_invalidates_without_media_writes() {
        for kind in FtlKind::ALL {
            let mut d = tiny(kind);
            d.write(Lpn(0), 4);
            let programs_before = d.programs_since_reset();
            let t = d.trim(Lpn(0), 4);
            assert_eq!(t, SimDuration::ZERO, "{kind}: trim must be metadata-only");
            assert_eq!(
                d.programs_since_reset(),
                programs_before,
                "{kind}: trim programmed pages"
            );
            assert_eq!(d.stats().trims, 1);
            assert_eq!(d.stats().trimmed_pages, 4);
            // A read of trimmed pages returns unmapped (bus-only) service.
            let r = d.read(Lpn(0), 4);
            assert_eq!(r, SimDuration::from_micros(400), "{kind}: bus only");
        }
    }

    #[test]
    fn trim_makes_gc_cheaper() {
        use fc_simkit::DetRng;
        // Two identical aged devices; one trims half its data before a write
        // storm. The trimmed device must erase less (dead pages are free
        // profit for GC).
        let run = |trim: bool| {
            let mut d = tiny(FtlKind::PageLevel);
            let mut rng = DetRng::new(3);
            d.precondition(0.9, 0.5, &mut rng);
            let logical = d.logical_pages();
            if trim {
                d.trim(Lpn(0), (logical / 2) as u32);
            }
            for _ in 0..(logical * 2) {
                d.write(Lpn(rng.below(logical / 2) + logical / 2), 1);
            }
            d.erases_since_reset()
        };
        assert!(run(true) <= run(false));
    }

    #[test]
    fn worn_blocks_are_retired_and_the_device_keeps_working() {
        use fc_simkit::DetRng;
        for kind in FtlKind::ALL {
            let mut d = tiny(kind);
            d.set_endurance_limit(40); // accelerated wear
            let mut rng = DetRng::new(4);
            let logical = d.logical_pages();
            // Churn until the first few blocks wear out, then stop — wear-
            // aware levelling means continuing would retire the whole spare
            // pool at once (genuine end-of-life).
            let mut churn = 0u64;
            while d.ftl_stats().retired_blocks < 3 && churn < logical * 60 {
                d.write(Lpn(rng.below(logical)), 1);
                churn += 1;
            }
            let retired = d.ftl_stats().retired_blocks;
            assert!(retired >= 3, "{kind}: no blocks retired under heavy wear");
            // The device still serves reads and writes after retirements.
            d.write(Lpn(0), 1);
            d.read(Lpn(0), 1);
            // No block exceeded the limit.
            assert!(
                d.wear_report().max <= 40,
                "{kind}: wear limit breached ({})",
                d.wear_report().max
            );
        }
    }

    #[test]
    fn obs_stream_mirrors_device_stats() {
        use fc_obs::{Obs, Value};
        use fc_simkit::DetRng;
        let mut d = tiny(FtlKind::PageLevel);
        let mut rng = DetRng::new(9);
        d.precondition(0.9, 0.5, &mut rng);
        let (obs, ring) = Obs::ring(100_000);
        d.attach_obs(&obs);
        let logical = d.logical_pages();
        for i in 0..(logical * 3) {
            obs.set_sim_now(i * 1_000);
            d.write(Lpn(rng.below(logical)), 1);
        }
        d.read(Lpn(0), 2);
        let events = ring.events();
        let writes: Vec<_> = events.iter().filter(|e| e.kind == "host_write").collect();
        assert_eq!(writes.len() as u64, d.stats().host_write_requests);
        // Per-event erase counts sum to the device's reset-relative total.
        let erases: u64 = writes
            .iter()
            .filter_map(|e| e.get("erases").and_then(Value::as_u64))
            .sum();
        assert_eq!(erases, d.erases_since_reset());
        assert!(erases > 0, "churn must trigger GC");
        // Each GC event carries a per-plane erase breakdown that adds up.
        let gc_plane_erases: u64 = events
            .iter()
            .filter(|e| e.kind == "gc")
            .filter_map(|e| e.get("plane_erases").and_then(Value::as_u64s))
            .map(|planes| planes.iter().sum::<u64>())
            .sum();
        assert_eq!(gc_plane_erases, erases);
        // Live counters match too.
        let snap = obs.registry().snapshot();
        assert_eq!(snap.counter("ssd.block_erases"), Some(erases));
        assert_eq!(
            snap.counter("ssd.host_read_requests"),
            Some(d.stats().host_read_requests)
        );
        assert!(snap.gauge("ssd.write_amp").unwrap() > 1.0);
    }

    #[test]
    fn erases_accumulate_under_churn() {
        use fc_simkit::DetRng;
        let mut d = tiny(FtlKind::Fast);
        let mut rng = DetRng::new(8);
        let logical = d.logical_pages();
        for _ in 0..(logical * 6) {
            d.write(Lpn(rng.below(logical)), 1);
        }
        assert!(d.erases_since_reset() > 0);
        assert!(d.stats().write_amplification() > 1.0);
    }
}
