//! Physical geometry of the simulated NAND device and address arithmetic.
//!
//! Follows the hierarchy of Section II.A: a device is made of dies, each die
//! of planes, each plane of blocks, each block of pages. Pages are the
//! read/program unit; blocks are the erase unit. Table II of the paper fixes
//! the evaluation geometry: 4 KB pages, 256 KB blocks (64 pages), 4 GB dies.
//!
//! Addressing conventions used throughout the workspace:
//!
//! * **LPN** (`Lpn`) — logical page number, the host-visible address unit.
//! * **LBN** — logical block number, `lpn / pages_per_block`; the granularity
//!   FlashCoop's buffer manager and the hybrid FTLs think in.
//! * **PPN** (`Ppn`) — physical page number, `block_id * pages_per_block +
//!   page_offset`.
//! * Physical block `b` lives on plane `b % planes_total`, which spreads
//!   consecutively allocated blocks round-robin over planes and is what makes
//!   striped sequential writes program in parallel.

use serde::{Deserialize, Serialize};

/// Logical page number (host address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lpn(pub u64);

/// Physical page number (flash address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ppn(pub u64);

/// Physical block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl Lpn {
    /// The logical block this page belongs to.
    #[inline]
    pub fn lbn(self, geo: &Geometry) -> u64 {
        self.0 / geo.pages_per_block as u64
    }

    /// Offset of this page within its logical block.
    #[inline]
    pub fn block_offset(self, geo: &Geometry) -> u32 {
        (self.0 % geo.pages_per_block as u64) as u32
    }

    /// The next logical page.
    #[inline]
    pub fn next(self) -> Lpn {
        Lpn(self.0 + 1)
    }
}

/// Device geometry. All counts are per the unit above them in the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Geometry {
    /// Bytes per page (data area).
    pub page_bytes: u32,
    /// Pages per erase block.
    pub pages_per_block: u32,
    /// Blocks per plane.
    pub blocks_per_plane: u32,
    /// Planes per die.
    pub planes_per_die: u32,
    /// Dies in the device.
    pub dies: u32,
}

impl Geometry {
    /// The paper's Table II geometry: 4 KB pages, 64-page (256 KB) blocks,
    /// 4 GB dies (4096 blocks/plane x 4 planes), one die.
    ///
    /// One Table II die is 4 GiB = 16384 blocks; we model 4 planes per die as
    /// in the Agrawal et al. SSD model the paper plugs into DiskSim.
    pub fn table2() -> Self {
        Geometry {
            page_bytes: 4096,
            pages_per_block: 64,
            blocks_per_plane: 4096,
            planes_per_die: 4,
            dies: 1,
        }
    }

    /// A scaled-down geometry for fast experiments: 512 MiB over 4 planes.
    /// Same page/block shape as Table II so all ratios (merge costs, GC
    /// amplification) are unchanged; only total capacity shrinks.
    pub fn small() -> Self {
        Geometry {
            page_bytes: 4096,
            pages_per_block: 64,
            blocks_per_plane: 512,
            planes_per_die: 4,
            dies: 1,
        }
    }

    /// A tiny geometry for unit tests (16 MiB, 4-page blocks) so GC paths are
    /// exercised with trivially small workloads.
    pub fn tiny() -> Self {
        Geometry {
            page_bytes: 4096,
            pages_per_block: 4,
            blocks_per_plane: 32,
            planes_per_die: 2,
            dies: 1,
        }
    }

    /// Total planes in the device.
    #[inline]
    pub fn planes_total(&self) -> u32 {
        self.planes_per_die * self.dies
    }

    /// Total physical blocks in the device.
    #[inline]
    pub fn blocks_total(&self) -> u32 {
        self.blocks_per_plane * self.planes_total()
    }

    /// Total physical pages in the device.
    #[inline]
    pub fn pages_total(&self) -> u64 {
        self.blocks_total() as u64 * self.pages_per_block as u64
    }

    /// Raw capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        self.pages_total() * self.page_bytes as u64
    }

    /// Bytes per erase block.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        self.pages_per_block as u64 * self.page_bytes as u64
    }

    /// Plane that hosts physical block `b` (round-robin layout).
    #[inline]
    pub fn plane_of_block(&self, b: BlockId) -> u32 {
        b.0 % self.planes_total()
    }

    /// Compose a PPN from block and in-block page offset.
    #[inline]
    pub fn ppn(&self, block: BlockId, page: u32) -> Ppn {
        debug_assert!(page < self.pages_per_block);
        Ppn(block.0 as u64 * self.pages_per_block as u64 + page as u64)
    }

    /// Physical block containing `ppn`.
    #[inline]
    pub fn block_of(&self, ppn: Ppn) -> BlockId {
        BlockId((ppn.0 / self.pages_per_block as u64) as u32)
    }

    /// In-block page offset of `ppn`.
    #[inline]
    pub fn page_of(&self, ppn: Ppn) -> u32 {
        (ppn.0 % self.pages_per_block as u64) as u32
    }

    /// Plane of the block containing `ppn`.
    #[inline]
    pub fn plane_of_ppn(&self, ppn: Ppn) -> u32 {
        self.plane_of_block(self.block_of(ppn))
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::small()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_numbers() {
        let g = Geometry::table2();
        assert_eq!(g.page_bytes, 4096);
        assert_eq!(g.block_bytes(), 256 * 1024);
        assert_eq!(g.pages_per_block, 64);
        // Die size 4 GB.
        assert_eq!(g.capacity_bytes(), 4 * 1024 * 1024 * 1024);
    }

    #[test]
    fn small_keeps_table2_shape() {
        let g = Geometry::small();
        let t = Geometry::table2();
        assert_eq!(g.page_bytes, t.page_bytes);
        assert_eq!(g.pages_per_block, t.pages_per_block);
        assert_eq!(g.capacity_bytes(), 512 * 1024 * 1024);
    }

    #[test]
    fn ppn_round_trips() {
        let g = Geometry::tiny();
        for b in 0..g.blocks_total() {
            for p in 0..g.pages_per_block {
                let ppn = g.ppn(BlockId(b), p);
                assert_eq!(g.block_of(ppn), BlockId(b));
                assert_eq!(g.page_of(ppn), p);
            }
        }
    }

    #[test]
    fn lpn_block_math() {
        let g = Geometry::tiny(); // 4 pages per block
        assert_eq!(Lpn(0).lbn(&g), 0);
        assert_eq!(Lpn(3).lbn(&g), 0);
        assert_eq!(Lpn(4).lbn(&g), 1);
        assert_eq!(Lpn(7).block_offset(&g), 3);
        assert_eq!(Lpn(7).next(), Lpn(8));
    }

    #[test]
    fn plane_layout_is_round_robin() {
        let g = Geometry::tiny(); // 2 planes
        assert_eq!(g.plane_of_block(BlockId(0)), 0);
        assert_eq!(g.plane_of_block(BlockId(1)), 1);
        assert_eq!(g.plane_of_block(BlockId(2)), 0);
        let ppn = g.ppn(BlockId(3), 1);
        assert_eq!(g.plane_of_ppn(ppn), 1);
    }

    #[test]
    fn totals_are_consistent() {
        let g = Geometry::tiny();
        assert_eq!(g.planes_total(), 2);
        assert_eq!(g.blocks_total(), 64);
        assert_eq!(g.pages_total(), 256);
        assert_eq!(g.capacity_bytes(), 256 * 4096);
    }
}
