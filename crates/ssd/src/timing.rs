//! Flash operation timing — the paper's Table II.
//!
//! | Operation | Table II value |
//! |---|---|
//! | Page read to register | 25 µs |
//! | Page program from register | 200 µs |
//! | Block erase | 1.5 ms |
//! | Serial access to register (data bus) | 100 µs |
//! | Erase cycles | 100 K (SLC) |

use fc_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// Timing parameters of the simulated flash chips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Page read (cell array → data register).
    pub page_read: SimDuration,
    /// Page program (data register → cell array).
    pub page_program: SimDuration,
    /// Block erase.
    pub block_erase: SimDuration,
    /// Serial bus transfer of one page between controller and data register.
    pub bus_transfer: SimDuration,
    /// Rated erase cycles per block before wear-out (SLC in Table II).
    pub erase_cycles: u32,
}

impl TimingParams {
    /// The paper's Table II values.
    pub fn table2() -> Self {
        TimingParams {
            page_read: SimDuration::from_micros(25),
            page_program: SimDuration::from_micros(200),
            block_erase: SimDuration::from_micros(1500),
            bus_transfer: SimDuration::from_micros(100),
            erase_cycles: 100_000,
        }
    }

    /// Cost of a host-visible read of one page: cell read + bus out.
    pub fn host_page_read(&self) -> SimDuration {
        self.page_read + self.bus_transfer
    }

    /// Cost of a host-visible program of one page: bus in + program.
    pub fn host_page_program(&self) -> SimDuration {
        self.bus_transfer + self.page_program
    }

    /// Cost of an internal copy-back (GC page migration): read + program,
    /// no external bus transfer.
    pub fn copy_back(&self) -> SimDuration {
        self.page_read + self.page_program
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        let t = TimingParams::table2();
        assert_eq!(t.page_read, SimDuration::from_micros(25));
        assert_eq!(t.page_program, SimDuration::from_micros(200));
        assert_eq!(t.block_erase, SimDuration::from_micros(1500));
        assert_eq!(t.bus_transfer, SimDuration::from_micros(100));
        assert_eq!(t.erase_cycles, 100_000);
    }

    #[test]
    fn composite_costs() {
        let t = TimingParams::table2();
        assert_eq!(t.host_page_read(), SimDuration::from_micros(125));
        assert_eq!(t.host_page_program(), SimDuration::from_micros(300));
        assert_eq!(t.copy_back(), SimDuration::from_micros(225));
    }

    #[test]
    fn erase_dwarfs_program_dwarfs_read() {
        // The asymmetry that makes random writes expensive (Section II.C).
        let t = TimingParams::table2();
        assert!(t.block_erase > t.page_program);
        assert!(t.page_program > t.page_read);
    }
}
