//! # fc-ssd
//!
//! A from-scratch NAND-flash SSD simulator, standing in for the DiskSim SSD
//! plug-in the FlashCoop paper (ICPP 2010) uses for device-level evaluation.
//!
//! Layers, bottom up:
//!
//! * [`geometry`] / [`timing`] — the physical shape and Table II operation
//!   timings of the device.
//! * [`nand`] — the raw array: page states, erase-before-rewrite, in-order
//!   programming, wear counters.
//! * [`ftl`] — three Flash Translation Layers from the paper's evaluation:
//!   page-level mapping with greedy GC, BAST, and FAST (hybrid log-block
//!   FTLs with switch/partial/full merges).
//! * [`cost`] — per-request operation accounting and the plane-interleaving
//!   service-time model (striping makes sequential writes fast; random
//!   writes cannot exploit it — Section II.C.4).
//! * [`device`] — the [`device::Ssd`] request interface with statistics and
//!   the aging/preconditioning helper.
//! * [`stats`] / [`wear`] — erase counts, write-length distributions
//!   (Figure 8's measurement point), write amplification, wear reports.
//!
//! ```
//! use fc_ssd::{Ssd, SsdConfig, FtlKind, Lpn};
//!
//! let mut ssd = Ssd::new(SsdConfig::tiny(FtlKind::Bast));
//! let t = ssd.write(Lpn(0), 4); // one whole logical block, striped
//! assert!(t > fc_simkit::SimDuration::ZERO);
//! assert_eq!(ssd.stats().host_pages_written, 4);
//! ```

pub mod cost;
pub mod device;
pub mod ftl;
pub mod geometry;
pub mod nand;
pub mod stats;
pub mod timing;
pub mod wear;

pub use cost::CostBreakdown;
pub use device::{Ssd, SsdConfig};
pub use ftl::{FtlConfig, FtlKind, FtlStats};
pub use geometry::{BlockId, Geometry, Lpn, Ppn};
pub use nand::{NandArray, PageState};
pub use stats::SsdStats;
pub use timing::TimingParams;
pub use wear::WearReport;
