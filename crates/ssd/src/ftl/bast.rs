//! BAST — Block-Associative Sector Translation (Kim et al., 2002).
//!
//! A block-level data map plus a small pool of page-mapped **log blocks**,
//! each exclusively associated with one logical block (Section II.B,
//! "hybrid-level FTL"; Section V.B). Writes always append to the owning log
//! block; when a log block fills, the pool overflows, or its data must be
//! reconciled, a **merge** folds log + data into a single block:
//!
//! * **switch merge** — the log block was written fully sequentially; it
//!   simply *becomes* the data block (no copies, one erase of the old data
//!   block).
//! * **partial merge** — the log block holds a sequential prefix; the tail is
//!   copied in from the old data block, then switch.
//! * **full merge** — the log block is scrambled; the newest version of every
//!   page is copied into a fresh block, and both old blocks are erased.
//!
//! In the presence of small random writes each log block is evicted holding
//! only a few pages and almost every merge is a full merge — the behaviour
//! that makes BAST the FTL that benefits most from FlashCoop's
//! sequentialisation (Section IV.B.4).

use super::{FreePool, Ftl, FtlConfig, FtlKind, FtlStats};
use crate::cost::CostBreakdown;
use crate::geometry::{BlockId, Geometry, Lpn};
use crate::nand::{NandArray, PageState};
use std::collections::{HashMap, VecDeque};

/// Per-log-block metadata: the page-level map inside one log block.
#[derive(Debug, Clone)]
struct LogBlock {
    phys: BlockId,
    /// Logical offset → physical page offset of the *latest* version.
    slots: Vec<Option<u32>>,
    /// Pages appended so far.
    appended: u32,
    /// True while appends have followed identity order (offset i at page i).
    sequential: bool,
}

impl LogBlock {
    fn new(phys: BlockId, pages_per_block: u32) -> Self {
        LogBlock {
            phys,
            slots: vec![None; pages_per_block as usize],
            appended: 0,
            sequential: true,
        }
    }
}

/// Block-Associative Sector Translation FTL.
pub struct BastFtl {
    geo: Geometry,
    nand: NandArray,
    /// Logical block → data block.
    data_map: Vec<Option<BlockId>>,
    /// Logical block → its dedicated log block.
    logs: HashMap<u64, LogBlock>,
    /// FIFO of log-block owners for eviction.
    log_fifo: VecDeque<u64>,
    pool: FreePool,
    max_logs: usize,
    logical_pages: u64,
    stats: FtlStats,
}

impl BastFtl {
    /// Build over a fresh array.
    pub fn new(geo: Geometry, cfg: FtlConfig) -> Self {
        let nand = NandArray::new(geo);
        let logical_pages = cfg.logical_pages(&geo);
        let logical_blocks = (logical_pages / geo.pages_per_block as u64) as usize;
        BastFtl {
            geo,
            nand,
            data_map: vec![None; logical_blocks],
            logs: HashMap::new(),
            log_fifo: VecDeque::new(),
            pool: FreePool::new((0..geo.blocks_total()).map(BlockId), cfg.wear_aware_alloc),
            max_logs: cfg.log_blocks.max(2),
            logical_pages,
            stats: FtlStats::default(),
        }
    }

    /// Number of log blocks currently in use.
    pub fn live_log_blocks(&self) -> usize {
        self.logs.len()
    }

    fn alloc(&mut self) -> BlockId {
        self.pool
            .alloc(&self.nand)
            .expect("BAST: free pool exhausted (over-provisioning too small)")
    }

    fn erase_release(&mut self, b: BlockId, cost: &mut CostBreakdown) {
        match self.nand.erase(b, false) {
            Ok(()) => {
                cost.erase_on(self.geo.plane_of_block(b));
                self.pool.release(b);
            }
            Err(crate::nand::NandError::WornOut { .. }) => {
                // Spent block: retire instead of returning it to the pool.
                self.stats.retired_blocks += 1;
            }
            Err(e) => panic!("block fully dead at merge: {e}"),
        }
    }

    /// Invalidate the currently-valid copy of `(lbn, off)`, wherever it lives.
    fn invalidate_current(&mut self, lbn: u64, off: u32) {
        if let Some(lb) = self.logs.get(&lbn) {
            if let Some(p) = lb.slots[off as usize] {
                self.nand.invalidate(self.geo.ppn(lb.phys, p));
                return;
            }
        }
        if let Some(db) = self.data_map[lbn as usize] {
            let ppn = self.geo.ppn(db, off);
            if self.nand.page_state(ppn) == PageState::Valid {
                self.nand.invalidate(ppn);
            }
        }
    }

    /// Fold the log block for `lbn` back into a single data block.
    fn merge(&mut self, lbn: u64, cost: &mut CostBreakdown) {
        let Some(lb) = self.logs.remove(&lbn) else {
            return;
        };
        self.log_fifo.retain(|&l| l != lbn);
        let n = self.geo.pages_per_block;
        let old_data = self.data_map[lbn as usize];
        let log_plane = self.geo.plane_of_block(lb.phys);

        if lb.sequential && lb.appended == n {
            // Switch merge: the log block already is a perfect data block.
            if let Some(db) = old_data {
                // Every offset was superseded during appends, so it is dead.
                self.erase_release(db, cost);
            }
            self.data_map[lbn as usize] = Some(lb.phys);
            self.stats.switch_merges += 1;
            return;
        }

        if lb.sequential {
            // Partial merge: copy the missing tail from the data block, then
            // switch. Identity placement is preserved by `program_at`.
            for off in lb.appended..n {
                if let Some(db) = old_data {
                    let src = self.geo.ppn(db, off);
                    if self.nand.page_state(src) == PageState::Valid {
                        let lpn = Lpn(lbn * n as u64 + off as u64);
                        cost.read_on(self.geo.plane_of_block(db));
                        self.nand
                            .program_at(lb.phys, off, lpn)
                            .expect("tail pages of sequential log are free");
                        cost.program_on(log_plane);
                        self.nand.invalidate(src);
                        self.stats.page_copies += 1;
                    }
                }
            }
            if let Some(db) = old_data {
                self.erase_release(db, cost);
            }
            self.data_map[lbn as usize] = Some(lb.phys);
            self.stats.partial_merges += 1;
            return;
        }

        // Full merge: newest version of every page into a fresh block.
        let new = self.alloc();
        let new_plane = self.geo.plane_of_block(new);
        for off in 0..n {
            let src = lb.slots[off as usize]
                .map(|p| self.geo.ppn(lb.phys, p))
                .filter(|&ppn| self.nand.page_state(ppn) == PageState::Valid)
                .or_else(|| {
                    old_data
                        .map(|db| self.geo.ppn(db, off))
                        .filter(|&ppn| self.nand.page_state(ppn) == PageState::Valid)
                });
            if let Some(src) = src {
                let lpn = Lpn(lbn * n as u64 + off as u64);
                cost.read_on(self.geo.plane_of_ppn(src));
                self.nand
                    .program_at(new, off, lpn)
                    .expect("fresh merge destination");
                cost.program_on(new_plane);
                self.nand.invalidate(src);
                self.stats.page_copies += 1;
            }
        }
        self.erase_release(lb.phys, cost);
        if let Some(db) = old_data {
            self.erase_release(db, cost);
        }
        self.data_map[lbn as usize] = Some(new);
        self.stats.full_merges += 1;
    }

    /// Get (or create, evicting if necessary) the log block for `lbn`, with
    /// at least one free page.
    fn log_for_write(&mut self, lbn: u64, cost: &mut CostBreakdown) -> &mut LogBlock {
        // A full log block must be merged before accepting another page.
        if self
            .logs
            .get(&lbn)
            .map(|lb| self.nand.free_pages(lb.phys) == 0)
            .unwrap_or(false)
        {
            self.merge(lbn, cost);
        }
        if !self.logs.contains_key(&lbn) {
            if self.logs.len() >= self.max_logs {
                let victim = self
                    .log_fifo
                    .front()
                    .copied()
                    .expect("log fifo tracks every log block");
                self.merge(victim, cost);
            }
            let phys = self.alloc();
            self.logs
                .insert(lbn, LogBlock::new(phys, self.geo.pages_per_block));
            self.log_fifo.push_back(lbn);
        }
        self.logs.get_mut(&lbn).expect("just ensured")
    }

    fn write_page(&mut self, lpn: Lpn, cost: &mut CostBreakdown) {
        let lbn = lpn.lbn(&self.geo);
        let off = lpn.block_offset(&self.geo);
        // Ensure the log block *before* invalidating the old copy: creating
        // it may merge (this block's full log, or an evicted one), and a
        // merge must still see the old copy as the valid version.
        let lb = self.log_for_write(lbn, cost);
        let (phys, expected_page) = (lb.phys, lb.appended);
        self.invalidate_current(lbn, off);
        let ppn = self
            .nand
            .program_append(phys, lpn)
            .expect("log block has a free page");
        let page = self.geo.page_of(ppn);
        debug_assert_eq!(page, expected_page);
        let lb = self.logs.get_mut(&lbn).expect("still present");
        lb.slots[off as usize] = Some(page);
        lb.appended += 1;
        lb.sequential = lb.sequential && page == off;
        cost.bus(1);
        cost.program_on(self.geo.plane_of_block(phys));
    }
}

impl Ftl for BastFtl {
    fn write(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "write beyond logical capacity"
        );
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            self.write_page(Lpn(start.0 + i as u64), &mut cost);
        }
        cost
    }

    fn read(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "read beyond logical capacity"
        );
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            let lpn = Lpn(start.0 + i as u64);
            let lbn = lpn.lbn(&self.geo);
            let off = lpn.block_offset(&self.geo);
            cost.bus(1);
            if let Some(lb) = self.logs.get(&lbn) {
                if lb.slots[off as usize].is_some() {
                    cost.read_on(self.geo.plane_of_block(lb.phys));
                    continue;
                }
            }
            if let Some(db) = self.data_map[lbn as usize] {
                let ppn = self.geo.ppn(db, off);
                if self.nand.page_state(ppn) == PageState::Valid {
                    cost.read_on(self.geo.plane_of_block(db));
                }
            }
        }
        cost
    }

    fn trim(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "trim beyond logical capacity"
        );
        let cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            let lpn = Lpn(start.0 + i as u64);
            let lbn = lpn.lbn(&self.geo);
            let off = lpn.block_offset(&self.geo);
            self.invalidate_current(lbn, off);
            // The log-block slot (if any) no longer names live data.
            if let Some(lb) = self.logs.get_mut(&lbn) {
                lb.slots[off as usize] = None;
            }
        }
        cost
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn kind(&self) -> FtlKind {
        FtlKind::Bast
    }

    fn ftl_stats(&self) -> FtlStats {
        self.stats
    }

    fn nand(&self) -> &NandArray {
        &self.nand
    }

    fn nand_mut(&mut self) -> &mut NandArray {
        &mut self.nand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_simkit::DetRng;

    fn ftl() -> BastFtl {
        BastFtl::new(Geometry::tiny(), FtlConfig::tiny_test())
    }

    /// Read back the valid copy of a page for verification.
    fn valid_copy(f: &BastFtl, lpn: Lpn) -> Option<Lpn> {
        let lbn = lpn.lbn(&f.geo);
        let off = lpn.block_offset(&f.geo);
        if let Some(lb) = f.logs.get(&lbn) {
            if let Some(p) = lb.slots[off as usize] {
                return f.nand.read(f.geo.ppn(lb.phys, p)).ok();
            }
        }
        f.data_map[lbn as usize].and_then(|db| f.nand.read(f.geo.ppn(db, off)).ok())
    }

    #[test]
    fn sequential_full_block_write_causes_switch_merge() {
        let mut f = ftl();
        let n = f.geo.pages_per_block; // 4
                                       // Two full sequential passes over block 0: first fills the log
                                       // (switch-merged when it must accept the next round), second ditto.
        f.write(Lpn(0), n);
        f.write(Lpn(0), n);
        // The second pass forced a merge of the first full sequential log.
        assert_eq!(f.ftl_stats().switch_merges, 1);
        assert_eq!(f.ftl_stats().full_merges, 0);
        assert_eq!(f.ftl_stats().page_copies, 0);
        for i in 0..n as u64 {
            assert_eq!(valid_copy(&f, Lpn(i)), Some(Lpn(i)));
        }
    }

    #[test]
    fn random_single_page_writes_cause_full_merges() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = DetRng::new(3);
        // Out-of-order single-page writes across many blocks overflow the
        // log pool and force merges of scrambled logs.
        for _ in 0..2000 {
            let lpn = rng.below(logical);
            // Bias away from offset 0 so logs are non-sequential.
            let lpn = lpn | 1;
            f.write(Lpn(lpn.min(logical - 1)), 1);
        }
        let s = f.ftl_stats();
        assert!(s.full_merges > 0, "expected full merges, got {s:?}");
        assert!(s.page_copies > 0);
    }

    #[test]
    fn partial_sequential_log_gets_partial_merge() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        // Create a data block for lbn 0 via a full sequential pass + merge.
        f.write(Lpn(0), n as u32);
        f.write(Lpn(0), 1); // switch-merges the full log, starts a new one
        assert_eq!(f.ftl_stats().switch_merges, 1);
        // Now force eviction of lbn 0's (sequential, 1-page) log by filling
        // the log pool with other blocks.
        let max_logs = f.max_logs as u64;
        for b in 1..=max_logs {
            f.write(Lpn(b * n + 1), 1); // non-sequential logs elsewhere
        }
        let s = f.ftl_stats();
        assert_eq!(s.partial_merges, 1, "stats: {s:?}");
        // Data for lbn 0 survived the partial merge.
        for i in 0..n {
            assert_eq!(valid_copy(&f, Lpn(i)), Some(Lpn(i)));
        }
    }

    #[test]
    fn overwrites_within_log_keep_latest_version() {
        let mut f = ftl();
        f.write(Lpn(1), 1);
        f.write(Lpn(1), 1);
        f.write(Lpn(1), 1);
        // The log block holds three versions; only one is valid.
        let lb = f.logs.get(&0).unwrap();
        assert_eq!(f.nand.valid_pages(lb.phys), 1);
        assert_eq!(valid_copy(&f, Lpn(1)), Some(Lpn(1)));
    }

    #[test]
    fn data_survives_heavy_random_churn() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = DetRng::new(11);
        let mut written = std::collections::HashSet::new();
        for _ in 0..5000 {
            let lpn = rng.below(logical);
            f.write(Lpn(lpn), 1);
            written.insert(lpn);
        }
        for &lpn in &written {
            assert_eq!(valid_copy(&f, Lpn(lpn)), Some(Lpn(lpn)), "lost page {lpn}");
        }
    }

    #[test]
    fn reads_hit_log_then_data_then_nothing() {
        let mut f = ftl();
        let n = f.geo.pages_per_block;
        f.write(Lpn(0), n); // full sequential log
        f.write(Lpn(0), 1); // merge, then page 0 in fresh log
                            // Page 0 served from log, pages 1..n from data block.
        let c = f.read(Lpn(0), n);
        assert_eq!(c.total_reads() as u32, n);
        // Unwritten block: bus-only.
        let far = f.logical_pages() - n as u64;
        let c2 = f.read(Lpn(far), 1);
        assert_eq!(c2.total_reads(), 0);
        assert_eq!(c2.bus_transfers, 1);
    }

    #[test]
    fn log_pool_never_exceeds_cap() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        for b in 0..(f.max_logs as u64 * 3) {
            f.write(Lpn(b * n + 1), 1);
            assert!(f.live_log_blocks() <= f.max_logs);
        }
    }

    #[test]
    fn merge_costs_are_charged_to_triggering_write() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        // Fill the log pool with scrambled logs.
        for b in 0..f.max_logs as u64 {
            f.write(Lpn(b * n + 1), 1);
        }
        // The next new block forces an eviction + full merge.
        let cost = f.write(Lpn(f.max_logs as u64 * n + 1), 1);
        assert!(
            cost.total_erases() >= 1,
            "merge erase not charged: {cost:?}"
        );
    }
}
