//! DFTL — Demand-based Flash Translation Layer (Gupta, Kim, Urgaonkar —
//! ASPLOS 2009), cited by the paper's related work: "purely page-mapped,
//! which exploits temporal locality in enterprise-scale workloads to store
//! the most popular mappings in on-flash limited SRAM while the rest are
//! maintained on the flash device itself".
//!
//! The data path is the page-level FTL; on top of it sits the **Cached
//! Mapping Table (CMT)**: a bounded LRU of logical→physical mappings. A
//! translation miss costs one flash read (fetch the translation page), and
//! evicting a *dirty* CMT entry costs one flash program (write back the
//! translation page). Mappings are grouped into translation pages of
//! `page_bytes / 8` entries; fetching one miss warms the whole group
//! (DFTL's batching optimisation), which is what makes sequential and
//! hot-set workloads cheap and scattered ones expensive.
//!
//! Simplifications, documented per DESIGN.md: translation pages live in a
//! dedicated region whose own garbage collection is not modelled (its
//! traffic is orders of magnitude below data GC for these workloads); the
//! translation I/O itself is fully costed.

use super::page_level::PageFtl;
use super::{Ftl, FtlConfig, FtlKind, FtlStats};
use crate::cost::CostBreakdown;
use crate::geometry::{Geometry, Lpn};
use crate::nand::NandArray;
use std::collections::{BTreeSet, HashMap};

/// One cached translation group (all mappings of one translation page).
#[derive(Debug, Clone, Copy)]
struct CmtEntry {
    /// LRU stamp.
    stamp: u64,
    /// Any mapping in the group was updated since the last write-back.
    dirty: bool,
}

/// Demand-based FTL: page-level data path + cached mapping table.
pub struct DftlFtl {
    inner: PageFtl,
    geo: Geometry,
    /// Mappings per translation page.
    group_size: u64,
    /// Cached groups, keyed by translation-page number.
    cmt: HashMap<u64, CmtEntry>,
    /// LRU index: (stamp, group).
    lru: BTreeSet<(u64, u64)>,
    /// Capacity in *groups* (config gives entries; we divide by group size).
    capacity_groups: usize,
    next_stamp: u64,
    translation_reads: u64,
    translation_writes: u64,
}

impl DftlFtl {
    /// Build over a fresh array. `cfg.cmt_entries` mappings fit in SRAM.
    pub fn new(geo: Geometry, cfg: FtlConfig) -> Self {
        let group_size = (geo.page_bytes as u64 / 8).max(1);
        let capacity_groups = (cfg.cmt_entries as u64 / group_size).max(2) as usize;
        DftlFtl {
            inner: PageFtl::new(geo, cfg),
            geo,
            group_size,
            cmt: HashMap::new(),
            lru: BTreeSet::new(),
            capacity_groups,
            next_stamp: 0,
            translation_reads: 0,
            translation_writes: 0,
        }
    }

    /// Translation pages read from flash (CMT misses).
    pub fn translation_reads(&self) -> u64 {
        self.translation_reads
    }

    /// Translation pages written back (dirty CMT evictions).
    pub fn translation_writes(&self) -> u64 {
        self.translation_writes
    }

    /// Groups currently cached.
    pub fn cmt_groups(&self) -> usize {
        self.cmt.len()
    }

    /// Ensure the translation group of `lpn` is cached; charge miss costs.
    /// `update` marks the group dirty (a mapping changed).
    fn cmt_access(&mut self, lpn: Lpn, update: bool, cost: &mut CostBreakdown) {
        let group = lpn.0 / self.group_size;
        self.next_stamp += 1;
        let stamp = self.next_stamp;
        let plane = (group % self.geo.planes_total() as u64) as u32;

        match self.cmt.get_mut(&group) {
            Some(e) => {
                self.lru.remove(&(e.stamp, group));
                e.stamp = stamp;
                e.dirty |= update;
                self.lru.insert((stamp, group));
            }
            None => {
                // Miss: fetch the translation page from flash.
                cost.read_on(plane);
                self.translation_reads += 1;
                // Make room, writing back dirty victims.
                while self.cmt.len() >= self.capacity_groups {
                    let &(vs, vg) = self.lru.first().expect("cmt non-empty");
                    self.lru.remove(&(vs, vg));
                    let victim = self.cmt.remove(&vg).expect("indexed");
                    if victim.dirty {
                        let vplane = (vg % self.geo.planes_total() as u64) as u32;
                        cost.program_on(vplane);
                        self.translation_writes += 1;
                    }
                }
                self.cmt.insert(
                    group,
                    CmtEntry {
                        stamp,
                        dirty: update,
                    },
                );
                self.lru.insert((stamp, group));
            }
        }
    }

    /// Touch every translation group a request spans.
    fn cmt_span(&mut self, start: Lpn, pages: u32, update: bool, cost: &mut CostBreakdown) {
        let first = start.0 / self.group_size;
        let last = (start.0 + pages as u64 - 1) / self.group_size;
        for g in first..=last {
            self.cmt_access(Lpn(g * self.group_size), update, cost);
        }
    }
}

impl Ftl for DftlFtl {
    fn write(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        self.cmt_span(start, pages, true, &mut cost);
        cost.absorb(&self.inner.write(start, pages));
        cost
    }

    fn read(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        self.cmt_span(start, pages, false, &mut cost);
        cost.absorb(&self.inner.read(start, pages));
        cost
    }

    fn trim(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        self.cmt_span(start, pages, true, &mut cost);
        cost.absorb(&self.inner.trim(start, pages));
        cost
    }

    fn logical_pages(&self) -> u64 {
        self.inner.logical_pages()
    }

    fn kind(&self) -> FtlKind {
        FtlKind::Dftl
    }

    fn ftl_stats(&self) -> FtlStats {
        let mut s = self.inner.ftl_stats();
        s.translation_reads = self.translation_reads;
        s.translation_writes = self.translation_writes;
        s
    }

    fn nand(&self) -> &NandArray {
        self.inner.nand()
    }

    fn nand_mut(&mut self) -> &mut NandArray {
        self.inner.nand_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dftl(cmt_entries: usize) -> DftlFtl {
        let cfg = FtlConfig {
            cmt_entries,
            ..FtlConfig::tiny_test()
        };
        DftlFtl::new(Geometry::tiny(), cfg)
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut f = dftl(8192);
        let c1 = f.write(Lpn(0), 1);
        assert_eq!(f.translation_reads(), 1, "cold CMT must miss");
        // The miss costs one extra cell read on top of the data program.
        assert_eq!(c1.total_reads(), 1);
        let c2 = f.write(Lpn(1), 1);
        assert_eq!(f.translation_reads(), 1, "same group: hit");
        assert_eq!(c2.total_reads(), 0);
    }

    #[test]
    fn scattered_traffic_thrashes_the_cmt() {
        use fc_simkit::DetRng;
        // Tiny geometry: group = 512 mappings; logical 176 pages → 1 group!
        // Use a CMT of 2 groups but hop across the whole space with a larger
        // geometry to create >2 groups.
        let geo = Geometry::small(); // 4 KB pages → 512-entry groups
        let cfg = FtlConfig {
            cmt_entries: 1024, // 2 groups
            ..FtlConfig::default()
        };
        let mut f = DftlFtl::new(geo, cfg);
        let logical = f.logical_pages();
        let groups = logical / 512;
        assert!(groups > 8);
        let mut rng = DetRng::new(1);
        for _ in 0..200 {
            let g = rng.below(groups);
            f.write(Lpn(g * 512), 1);
        }
        // Far more misses than a hot-set workload would produce.
        assert!(
            f.translation_reads() > 100,
            "only {} translation reads",
            f.translation_reads()
        );
        assert!(
            f.translation_writes() > 0,
            "dirty evictions must write back"
        );
        assert!(f.cmt_groups() <= 2);
    }

    #[test]
    fn hot_set_stays_cached() {
        let geo = Geometry::small();
        let cfg = FtlConfig {
            cmt_entries: 4096, // 8 groups
            ..FtlConfig::default()
        };
        let mut f = DftlFtl::new(geo, cfg);
        // Hammer 4 groups: after the 4 cold misses, everything hits.
        for round in 0..50u64 {
            for g in 0..4u64 {
                f.write(Lpn(g * 512 + round), 1);
            }
        }
        assert_eq!(f.translation_reads(), 4);
        assert_eq!(f.translation_writes(), 0);
    }

    #[test]
    fn reads_do_not_dirty_the_cmt() {
        let geo = Geometry::small();
        let cfg = FtlConfig {
            cmt_entries: 512, // 1 group
            ..FtlConfig::default()
        };
        let mut f = DftlFtl::new(geo, cfg);
        // Capacity clamps to 2 groups minimum.
        f.read(Lpn(0), 1); // miss g0, clean
        f.read(Lpn(512), 1); // miss g1, clean
        f.read(Lpn(1024), 1); // miss g2, evicts clean g0 → no write-back
        assert_eq!(f.translation_reads(), 3);
        assert_eq!(f.translation_writes(), 0);
        f.write(Lpn(1536), 1); // miss g3 (dirty), evicts clean g1
        f.read(Lpn(0), 1); // miss g0, evicts clean g2
        assert_eq!(f.translation_writes(), 0);
        f.read(Lpn(512), 1); // miss g1, evicts DIRTY g3 → write-back
        assert_eq!(f.translation_writes(), 1);
    }

    #[test]
    fn data_path_is_still_correct() {
        use fc_simkit::DetRng;
        let mut f = dftl(64);
        let logical = f.logical_pages();
        let mut rng = DetRng::new(9);
        let mut written = std::collections::HashSet::new();
        for _ in 0..2000 {
            let lpn = rng.below(logical);
            f.write(Lpn(lpn), 1);
            written.insert(lpn);
        }
        // Ownership check via the inner page map.
        for &lpn in &written {
            let ppn = f.inner.lookup(Lpn(lpn)).expect("mapped");
            assert_eq!(f.nand().read(ppn).unwrap(), Lpn(lpn));
        }
        let s = f.ftl_stats();
        assert_eq!(s.translation_reads, f.translation_reads());
    }

    #[test]
    fn stats_surface_translation_counters() {
        let mut f = dftl(8192);
        f.write(Lpn(0), 1);
        let s = f.ftl_stats();
        assert_eq!(s.translation_reads, 1);
        assert_eq!(s.translation_writes, 0);
    }
}
