//! Flash Translation Layers.
//!
//! Three FTLs from the paper's evaluation (Section IV.A.3):
//!
//! * [`page_level::PageFtl`] — pure page-level mapping with greedy garbage
//!   collection (the "Page-based FTL" columns of Figures 6–8).
//! * [`bast::BastFtl`] — Block-Associative Sector Translation (Kim et al.):
//!   block-level data map plus per-logical-block log blocks.
//! * [`fast::FastFtl`] — Fully-Associative Sector Translation (Lee et al.):
//!   one sequential log block plus a shared, fully-associative random log
//!   block pool.
//!
//! All three share the [`FreePool`] block allocator (optionally wear-aware,
//! which is this simulator's wear-leveling mechanism: free-block allocation
//! always picks the least-worn candidate, cf. Chang's dual-pool schemes) and
//! report costs through [`CostBreakdown`].

pub mod bast;
pub mod dftl;
pub mod fast;
pub mod page_level;

use crate::cost::CostBreakdown;
use crate::geometry::{BlockId, Geometry, Lpn};
use crate::nand::NandArray;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Which FTL a device runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FtlKind {
    /// Page-level mapping with an unbounded in-RAM table.
    PageLevel,
    /// Block-Associative Sector Translation.
    Bast,
    /// Fully-Associative Sector Translation.
    Fast,
    /// Demand-based FTL: page-level mapping behind a bounded cached mapping
    /// table (extension; the paper cites DFTL in Section V.B).
    Dftl,
}

impl FtlKind {
    /// The paper's three evaluated FTLs, in figure order.
    pub const ALL: [FtlKind; 3] = [FtlKind::Bast, FtlKind::Fast, FtlKind::PageLevel];

    /// The paper's FTLs plus the DFTL extension.
    pub const ALL_EXTENDED: [FtlKind; 4] = [
        FtlKind::Bast,
        FtlKind::Fast,
        FtlKind::PageLevel,
        FtlKind::Dftl,
    ];

    /// Short display name matching the paper's figure captions.
    pub fn name(self) -> &'static str {
        match self {
            FtlKind::PageLevel => "Page-based",
            FtlKind::Bast => "BAST",
            FtlKind::Fast => "FAST",
            FtlKind::Dftl => "DFTL",
        }
    }
}

impl std::fmt::Display for FtlKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// FTL tunables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FtlConfig {
    /// Log-block pool size for the hybrid FTLs (BAST: per-block-associative
    /// pool; FAST: 1 sequential + `log_blocks - 1` random log blocks).
    pub log_blocks: usize,
    /// Fraction of physical blocks reserved as over-provisioning (spare
    /// blocks for GC headroom and log blocks). Typical consumer SSDs ~7 %,
    /// enterprise 12–28 %.
    pub spare_fraction: f64,
    /// Page-level GC: refill the free pool up to this many blocks…
    pub gc_high_watermark: usize,
    /// …whenever it drops below this many.
    pub gc_low_watermark: usize,
    /// Wear-aware free-block allocation (the wear-leveling mechanism).
    pub wear_aware_alloc: bool,
    /// DFTL only: SRAM budget for the cached mapping table, in mapping
    /// entries (grouped into translation pages of `page_bytes / 8` entries).
    pub cmt_entries: usize,
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig {
            log_blocks: 32,
            spare_fraction: 0.12,
            gc_high_watermark: 12,
            gc_low_watermark: 6,
            wear_aware_alloc: true,
            cmt_entries: 32_768,
        }
    }
}

impl FtlConfig {
    /// A small configuration for unit tests over [`Geometry::tiny`]: a
    /// 4-entry log pool and tight GC watermarks so merge/GC paths trigger
    /// with tiny workloads while leaving a usable logical space.
    pub fn tiny_test() -> Self {
        FtlConfig {
            log_blocks: 4,
            spare_fraction: 0.25,
            gc_high_watermark: 4,
            gc_low_watermark: 2,
            wear_aware_alloc: true,
            cmt_entries: 1024,
        }
    }

    /// Number of spare (non-logical) blocks for a given geometry: enough for
    /// the configured over-provisioning and never fewer than the hybrids'
    /// structural minimum (log pool + active blocks + merge headroom).
    pub fn spare_blocks(&self, geo: &Geometry) -> u32 {
        let frac = (self.spare_fraction.clamp(0.0, 0.9) * geo.blocks_total() as f64) as u32;
        let structural =
            self.log_blocks as u32 + 2 * geo.planes_total() + self.gc_high_watermark as u32 + 8;
        frac.max(structural).min(geo.blocks_total() - 1)
    }

    /// Host-visible logical pages for a given geometry.
    pub fn logical_pages(&self, geo: &Geometry) -> u64 {
        (geo.blocks_total() - self.spare_blocks(geo)) as u64 * geo.pages_per_block as u64
    }
}

/// Counters specific to FTL-internal activity (merges, GC migrations).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FtlStats {
    /// Switch merges (log block promoted to data block without copies).
    pub switch_merges: u64,
    /// Partial merges (tail of the data block copied into the log block).
    pub partial_merges: u64,
    /// Full merges (newest version of every page copied to a fresh block).
    pub full_merges: u64,
    /// Page-level GC victim blocks reclaimed.
    pub gc_victims: u64,
    /// Live pages migrated by GC or merges.
    pub page_copies: u64,
    /// Blocks retired after exceeding their rated erase cycles.
    pub retired_blocks: u64,
    /// DFTL: translation pages read on CMT misses.
    pub translation_reads: u64,
    /// DFTL: translation pages written back on dirty CMT evictions.
    pub translation_writes: u64,
}

impl FtlStats {
    /// Total merges of any type.
    pub fn merges(&self) -> u64 {
        self.switch_merges + self.partial_merges + self.full_merges
    }
}

/// The interface every FTL exposes to the device layer.
///
/// Requests address whole pages; `start + pages` must stay within
/// [`Ftl::logical_pages`]. The returned [`CostBreakdown`] covers *everything*
/// the request triggered, including synchronous GC/merge work, which is how
/// background internal operations "compete for resources with incoming
/// foreground requests" (Section II.C.2).
pub trait Ftl {
    /// Service a write of `pages` pages starting at `start`.
    fn write(&mut self, start: Lpn, pages: u32) -> CostBreakdown;

    /// Service a read of `pages` pages starting at `start`.
    fn read(&mut self, start: Lpn, pages: u32) -> CostBreakdown;

    /// Discard `pages` pages starting at `start` (TRIM): the host declares
    /// the data dead, so the FTL invalidates the mappings without any media
    /// writes — dead pages become free GC profit. This is how "short lived
    /// files … never really written to SSD" stay cheap even when some of
    /// their pages did reach the device (Section III.A).
    fn trim(&mut self, start: Lpn, pages: u32) -> CostBreakdown;

    /// Host-visible capacity in pages.
    fn logical_pages(&self) -> u64;

    /// Which FTL this is.
    fn kind(&self) -> FtlKind;

    /// Merge/GC counters.
    fn ftl_stats(&self) -> FtlStats;

    /// The physical array (erase counts, wear, utilisation introspection).
    fn nand(&self) -> &NandArray;

    /// Mutable physical array access (endurance-limit configuration).
    fn nand_mut(&mut self) -> &mut NandArray;
}

/// Free-block pool shared by the FTL implementations.
///
/// `wear_aware` allocation scans the (small) free list for the least-erased
/// block; FIFO otherwise. Released blocks must already be erased.
#[derive(Debug, Clone)]
pub struct FreePool {
    free: VecDeque<BlockId>,
    wear_aware: bool,
}

impl FreePool {
    /// Build a pool owning every block in `blocks`.
    pub fn new(blocks: impl IntoIterator<Item = BlockId>, wear_aware: bool) -> Self {
        FreePool {
            free: blocks.into_iter().collect(),
            wear_aware,
        }
    }

    /// Blocks currently free.
    pub fn len(&self) -> usize {
        self.free.len()
    }

    /// True when no blocks are free.
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }

    /// Take a block, preferring the least-worn when wear-aware.
    pub fn alloc(&mut self, nand: &NandArray) -> Option<BlockId> {
        if self.free.is_empty() {
            return None;
        }
        if !self.wear_aware {
            return self.free.pop_front();
        }
        let mut best = 0usize;
        let mut best_wear = u32::MAX;
        for (i, &b) in self.free.iter().enumerate() {
            let w = nand.erase_count(b);
            if w < best_wear {
                best_wear = w;
                best = i;
            }
        }
        self.free.remove(best)
    }

    /// Remove and return every free block (used by allocators that need to
    /// scan with their own criteria, e.g. plane-affine allocation).
    pub fn take_all(&mut self) -> Vec<BlockId> {
        self.free.drain(..).collect()
    }

    /// Return an erased block to the pool.
    pub fn release(&mut self, block: BlockId) {
        debug_assert!(
            !self.free.contains(&block),
            "double release of block {block:?}"
        );
        self.free.push_back(block);
    }
}

/// Construct a boxed FTL of the given kind over a fresh NAND array.
pub fn build_ftl(kind: FtlKind, geo: Geometry, cfg: FtlConfig) -> Box<dyn Ftl + Send> {
    match kind {
        FtlKind::PageLevel => Box::new(page_level::PageFtl::new(geo, cfg)),
        FtlKind::Bast => Box::new(bast::BastFtl::new(geo, cfg)),
        FtlKind::Fast => Box::new(fast::FastFtl::new(geo, cfg)),
        FtlKind::Dftl => Box::new(dftl::DftlFtl::new(geo, cfg)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spare_blocks_respects_fraction_and_structure() {
        let geo = Geometry::small(); // 2048 blocks
        let cfg = FtlConfig::default();
        let spare = cfg.spare_blocks(&geo);
        // 12% of 2048 = 245.
        assert_eq!(spare, 245);
        assert_eq!(cfg.logical_pages(&geo), (2048 - 245) as u64 * 64);
    }

    #[test]
    fn spare_blocks_never_below_structural_minimum() {
        let geo = Geometry::tiny(); // 64 blocks, 2 planes
        let cfg = FtlConfig {
            spare_fraction: 0.0,
            ..FtlConfig::default()
        };
        let spare = cfg.spare_blocks(&geo);
        // 32 log + 4 active + 12 gc + 8 = 56, capped at blocks-1 = 63.
        assert_eq!(spare, 56);
    }

    #[test]
    fn spare_blocks_capped_below_total() {
        let geo = Geometry::tiny();
        let cfg = FtlConfig {
            spare_fraction: 5.0, // silly value clamps to 0.9
            log_blocks: 1000,
            ..FtlConfig::default()
        };
        assert!(cfg.spare_blocks(&geo) < geo.blocks_total());
    }

    #[test]
    fn free_pool_fifo_order_when_not_wear_aware() {
        let nand = NandArray::new(Geometry::tiny());
        let mut pool = FreePool::new([BlockId(3), BlockId(1), BlockId(2)], false);
        assert_eq!(pool.alloc(&nand), Some(BlockId(3)));
        assert_eq!(pool.alloc(&nand), Some(BlockId(1)));
        pool.release(BlockId(3));
        assert_eq!(pool.alloc(&nand), Some(BlockId(2)));
        assert_eq!(pool.alloc(&nand), Some(BlockId(3)));
        assert_eq!(pool.alloc(&nand), None);
    }

    #[test]
    fn free_pool_wear_aware_picks_least_worn() {
        let mut nand = NandArray::new(Geometry::tiny());
        nand.erase(BlockId(1), false).unwrap();
        nand.erase(BlockId(1), false).unwrap();
        nand.erase(BlockId(2), false).unwrap();
        let mut pool = FreePool::new([BlockId(1), BlockId(2), BlockId(3)], true);
        // Block 3 has 0 erases, block 2 has 1, block 1 has 2.
        assert_eq!(pool.alloc(&nand), Some(BlockId(3)));
        assert_eq!(pool.alloc(&nand), Some(BlockId(2)));
        assert_eq!(pool.alloc(&nand), Some(BlockId(1)));
    }

    #[test]
    fn ftl_kind_names_match_paper() {
        assert_eq!(FtlKind::Bast.to_string(), "BAST");
        assert_eq!(FtlKind::Fast.to_string(), "FAST");
        assert_eq!(FtlKind::PageLevel.to_string(), "Page-based");
        assert_eq!(FtlKind::ALL.len(), 3);
    }

    #[test]
    fn ftl_stats_merge_total() {
        let s = FtlStats {
            switch_merges: 1,
            partial_merges: 2,
            full_merges: 3,
            gc_victims: 0,
            page_copies: 10,
            ..FtlStats::default()
        };
        assert_eq!(s.merges(), 6);
    }
}
