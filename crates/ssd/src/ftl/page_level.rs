//! Page-level FTL with greedy garbage collection.
//!
//! Every logical page maps independently to a physical page ("page-level FTL"
//! in Section II.B — efficient, great GC behaviour, large mapping table).
//! Host writes append round-robin across planes so sequential runs stripe and
//! program in parallel (Section II.C.4). When the free-block pool drops below
//! the low watermark, greedy GC reclaims the sealed block with the most
//! invalid pages, migrating survivors by plane-internal copy-back.

use super::{FreePool, Ftl, FtlConfig, FtlKind, FtlStats};
use crate::cost::CostBreakdown;
use crate::geometry::{BlockId, Geometry, Lpn, Ppn};
use crate::nand::NandArray;
use std::collections::BinaryHeap;

/// What a physical block is currently used for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// In the free pool.
    Free,
    /// Receiving host writes on its plane.
    Active,
    /// Receiving GC migrations on its plane.
    GcActive,
    /// Fully written and closed; a GC victim candidate.
    Sealed,
    /// Worn out (rated erase cycles exhausted); never reused.
    Retired,
}

/// Page-level mapped FTL.
pub struct PageFtl {
    geo: Geometry,
    nand: NandArray,
    map: Vec<Option<Ppn>>,
    pool: FreePool,
    roles: Vec<Role>,
    /// Host-write active block per plane.
    active: Vec<Option<BlockId>>,
    /// GC destination block per plane (copy-back stays on-plane).
    gc_active: Vec<Option<BlockId>>,
    plane_cursor: u32,
    logical_pages: u64,
    gc_low: usize,
    gc_high: usize,
    stats: FtlStats,
    /// Max-heap of (invalid_count, block) victim candidates; entries go stale
    /// when counts grow (a fresher, larger entry is pushed) or the block is
    /// reclaimed — stale entries are skipped at pop time.
    victims: BinaryHeap<(u32, u32)>,
}

impl PageFtl {
    /// Build over a fresh array.
    pub fn new(geo: Geometry, cfg: FtlConfig) -> Self {
        let nand = NandArray::new(geo);
        let blocks = geo.blocks_total();
        let planes = geo.planes_total() as usize;
        let pool = FreePool::new((0..blocks).map(BlockId), cfg.wear_aware_alloc);
        PageFtl {
            geo,
            nand,
            map: vec![None; cfg.logical_pages(&geo) as usize],
            pool,
            roles: vec![Role::Free; blocks as usize],
            active: vec![None; planes],
            gc_active: vec![None; planes],
            plane_cursor: 0,
            logical_pages: cfg.logical_pages(&geo),
            gc_low: cfg.gc_low_watermark.max(planes + 2),
            gc_high: cfg.gc_high_watermark.max(cfg.gc_low_watermark + planes),
            stats: FtlStats::default(),
            victims: BinaryHeap::new(),
        }
    }

    /// Current physical location of a logical page, if mapped.
    pub fn lookup(&self, lpn: Lpn) -> Option<Ppn> {
        self.map.get(lpn.0 as usize).copied().flatten()
    }

    /// Fraction of logical pages currently mapped.
    pub fn mapped_fraction(&self) -> f64 {
        let mapped = self.map.iter().filter(|m| m.is_some()).count();
        mapped as f64 / self.map.len().max(1) as f64
    }

    fn invalidate_old(&mut self, lpn: Lpn) {
        if let Some(old) = self.map[lpn.0 as usize].take() {
            self.nand.invalidate(old);
            let b = self.geo.block_of(old);
            if self.roles[b.0 as usize] == Role::Sealed {
                self.victims.push((self.nand.invalid_pages(b), b.0));
            }
        }
    }

    fn seal(&mut self, b: BlockId) {
        self.roles[b.0 as usize] = Role::Sealed;
        let inv = self.nand.invalid_pages(b);
        if inv > 0 {
            self.victims.push((inv, b.0));
        }
    }

    /// Get the host-write active block for `plane`, allocating if needed.
    fn active_block(&mut self, plane: u32) -> BlockId {
        if let Some(b) = self.active[plane as usize] {
            if self.nand.free_pages(b) > 0 {
                return b;
            }
            self.seal(b);
            self.active[plane as usize] = None;
        }
        let b = self
            .alloc_on_plane(plane)
            .expect("page FTL: free pool exhausted allocating active block");
        self.roles[b.0 as usize] = Role::Active;
        self.active[plane as usize] = Some(b);
        b
    }

    fn gc_block(&mut self, plane: u32) -> BlockId {
        if let Some(b) = self.gc_active[plane as usize] {
            if self.nand.free_pages(b) > 0 {
                return b;
            }
            self.seal(b);
            self.gc_active[plane as usize] = None;
        }
        let b = self
            .alloc_on_plane(plane)
            .expect("page FTL: free pool exhausted during GC");
        self.roles[b.0 as usize] = Role::GcActive;
        self.gc_active[plane as usize] = Some(b);
        b
    }

    /// Allocate a free block on a specific plane. The pool is global, so scan
    /// for a plane match; fall back to any block if the plane has none free
    /// (cross-plane copy costs the same in this first-order model).
    fn alloc_on_plane(&mut self, plane: u32) -> Option<BlockId> {
        // The pool is small (watermark-sized); drain it, pick the least-worn
        // block on the requested plane, and return the rest.
        let mut candidate: Option<BlockId> = None;
        let mut best_wear = u32::MAX;
        let drained = self.pool.take_all();
        for &b in &drained {
            if self.geo.plane_of_block(b) == plane {
                let w = self.nand.erase_count(b);
                if w < best_wear {
                    best_wear = w;
                    candidate = Some(b);
                }
            }
        }
        let chosen = candidate.or_else(|| drained.first().copied());
        for b in drained {
            if Some(b) != chosen {
                self.pool.release(b);
            }
        }
        chosen
    }

    /// Pop the best live victim candidate: sealed, with the most invalid pages.
    fn pop_victim(&mut self) -> Option<BlockId> {
        while let Some((count, raw)) = self.victims.pop() {
            let b = BlockId(raw);
            if self.roles[raw as usize] != Role::Sealed {
                continue; // reclaimed since pushed
            }
            let current = self.nand.invalid_pages(b);
            if current != count {
                continue; // stale entry; a fresher one exists
            }
            return Some(b);
        }
        // Heap empty: fall back to a full scan for any sealed block with dead
        // pages (can happen after deserialisation or heavy sealing churn).
        let mut best: Option<(u32, BlockId)> = None;
        for raw in 0..self.roles.len() {
            if self.roles[raw] == Role::Sealed {
                let b = BlockId(raw as u32);
                let inv = self.nand.invalid_pages(b);
                if inv > 0 && best.map(|(bi, _)| inv > bi).unwrap_or(true) {
                    best = Some((inv, b));
                }
            }
        }
        best.map(|(_, b)| b)
    }

    /// Run greedy GC until the pool is back above the high watermark.
    fn collect_garbage(&mut self, cost: &mut CostBreakdown) {
        while self.pool.len() < self.gc_high {
            let Some(victim) = self.pop_victim() else {
                // Nothing reclaimable. Legal as long as the pool isn't
                // actually empty (writes bounded by logical capacity).
                assert!(
                    self.pool.len() >= self.geo.planes_total() as usize,
                    "page FTL: no GC victim and free pool critically low"
                );
                return;
            };
            let plane = self.geo.plane_of_block(victim);
            let survivors = self.nand.valid_entries(victim);
            for (page, lpn) in survivors {
                let src = self.geo.ppn(victim, page);
                let dst_block = self.gc_block(plane);
                let dst = self
                    .nand
                    .program_append(dst_block, lpn)
                    .expect("gc destination has free pages");
                self.nand.invalidate(src);
                self.map[lpn.0 as usize] = Some(dst);
                cost.read_on(plane);
                cost.program_on(self.geo.plane_of_block(dst_block));
                self.stats.page_copies += 1;
            }
            match self.nand.erase(victim, false) {
                Ok(()) => {
                    cost.erase_on(plane);
                    self.roles[victim.0 as usize] = Role::Free;
                    self.pool.release(victim);
                }
                Err(crate::nand::NandError::WornOut { .. }) => {
                    // The block's cells are spent: retire it. Capacity
                    // shrinks by one spare block.
                    self.roles[victim.0 as usize] = Role::Retired;
                    self.stats.retired_blocks += 1;
                }
                Err(e) => panic!("victim fully dead: {e}"),
            }
            self.stats.gc_victims += 1;
        }
    }

    fn maybe_gc(&mut self, cost: &mut CostBreakdown) {
        if self.pool.len() < self.gc_low {
            self.collect_garbage(cost);
        }
    }
}

impl Ftl for PageFtl {
    fn write(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "write beyond logical capacity ({} + {} > {})",
            start.0,
            pages,
            self.logical_pages
        );
        for i in 0..pages {
            let lpn = Lpn(start.0 + i as u64);
            self.maybe_gc(&mut cost);
            let plane = self.plane_cursor % self.geo.planes_total();
            self.plane_cursor = self.plane_cursor.wrapping_add(1);
            let block = self.active_block(plane);
            self.invalidate_old(lpn);
            let ppn = self
                .nand
                .program_append(block, lpn)
                .expect("active block has room");
            self.map[lpn.0 as usize] = Some(ppn);
            cost.bus(1);
            cost.program_on(plane);
        }
        cost
    }

    fn read(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "read beyond logical capacity"
        );
        for i in 0..pages {
            let lpn = Lpn(start.0 + i as u64);
            cost.bus(1);
            if let Some(ppn) = self.map[lpn.0 as usize] {
                cost.read_on(self.geo.plane_of_ppn(ppn));
            }
            // Unmapped pages are served from the controller (all-zero data)
            // with only the bus transfer.
        }
        cost
    }

    fn trim(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "trim beyond logical capacity"
        );
        let cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            self.invalidate_old(Lpn(start.0 + i as u64));
        }
        cost
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn kind(&self) -> FtlKind {
        FtlKind::PageLevel
    }

    fn ftl_stats(&self) -> FtlStats {
        self.stats
    }

    fn nand(&self) -> &NandArray {
        &self.nand
    }

    fn nand_mut(&mut self) -> &mut NandArray {
        &mut self.nand
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ftl() -> PageFtl {
        PageFtl::new(Geometry::tiny(), FtlConfig::tiny_test())
    }

    #[test]
    fn write_then_read_maps_pages() {
        let mut f = ftl();
        f.write(Lpn(0), 3);
        for i in 0..3 {
            let ppn = f.lookup(Lpn(i)).expect("mapped");
            assert_eq!(f.nand.read(ppn).unwrap(), Lpn(i));
        }
        assert!(f.lookup(Lpn(3)).is_none());
        let cost = f.read(Lpn(0), 4);
        assert_eq!(cost.bus_transfers, 4);
        assert_eq!(cost.total_reads(), 3); // the unmapped page costs no cell read
    }

    #[test]
    fn overwrite_invalidates_previous_version() {
        let mut f = ftl();
        f.write(Lpn(5), 1);
        let first = f.lookup(Lpn(5)).unwrap();
        f.write(Lpn(5), 1);
        let second = f.lookup(Lpn(5)).unwrap();
        assert_ne!(first, second);
        assert_eq!(f.nand.page_state(first), crate::nand::PageState::Invalid);
    }

    #[test]
    fn sequential_write_stripes_across_planes() {
        let mut f = ftl();
        let cost = f.write(Lpn(0), 4); // tiny geometry has 2 planes
        assert_eq!(cost.total_programs(), 4);
        // Programs spread evenly: max per plane is 2, so they overlap.
        let max_plane = cost.plane_programs.iter().max().unwrap();
        assert_eq!(*max_plane, 2);
    }

    #[test]
    fn gc_reclaims_space_under_overwrite_pressure() {
        let mut f = ftl();
        let logical = f.logical_pages();
        // Hammer a small hot set far beyond physical capacity.
        let hot = (logical / 4).max(8);
        let mut cost_total = 0u64;
        for round in 0..40 {
            for lpn in 0..hot {
                let c = f.write(Lpn((lpn + round) % logical), 1);
                cost_total += c.total_erases();
            }
        }
        assert!(f.ftl_stats().gc_victims > 0, "GC never ran");
        assert!(cost_total > 0, "no erase cost charged to writes");
        assert!(f.nand.total_erases() > 0);
    }

    #[test]
    fn write_amplification_exceeds_one_for_random_and_stays_low_for_sequential() {
        use fc_simkit::DetRng;
        let geo = Geometry::tiny();
        let cfg = FtlConfig::tiny_test();

        // Random overwrites over the whole logical space.
        let mut f = PageFtl::new(geo, cfg);
        let logical = f.logical_pages();
        let mut rng = DetRng::new(7);
        let host_writes = logical * 6;
        for _ in 0..host_writes {
            f.write(Lpn(rng.below(logical)), 1);
        }
        let wa_random = f.nand.total_programs() as f64 / host_writes as f64;

        // Pure sequential wraps.
        let mut f2 = PageFtl::new(geo, cfg);
        for i in 0..host_writes {
            f2.write(Lpn(i % logical), 1);
        }
        let wa_seq = f2.nand.total_programs() as f64 / host_writes as f64;

        assert!(wa_random > 1.02, "random WA {wa_random} too low");
        assert!(
            wa_seq < wa_random,
            "sequential WA {wa_seq} should be below random {wa_random}"
        );
    }

    #[test]
    #[should_panic(expected = "beyond logical capacity")]
    fn write_past_capacity_panics() {
        let mut f = ftl();
        let logical = f.logical_pages();
        f.write(Lpn(logical), 1);
    }

    #[test]
    fn full_logical_fill_succeeds() {
        // Writing every logical page once must fit without GC deadlock.
        let mut f = ftl();
        let logical = f.logical_pages();
        for i in 0..logical {
            f.write(Lpn(i), 1);
        }
        for i in 0..logical {
            assert!(f.lookup(Lpn(i)).is_some());
        }
        assert!((f.mapped_fraction() - 1.0).abs() < 1e-12);
        // And a second full overwrite pass also fits (GC reclaims).
        for i in 0..logical {
            f.write(Lpn(i), 1);
        }
        assert!(f.ftl_stats().gc_victims > 0);
    }

    #[test]
    fn gc_preserves_all_live_data() {
        use fc_simkit::DetRng;
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = DetRng::new(99);
        // Random writes with churn, then verify every mapped page reads back
        // the right LPN (the nand owner check).
        for _ in 0..(logical * 8) {
            f.write(Lpn(rng.below(logical)), 1);
        }
        for i in 0..logical {
            if let Some(ppn) = f.lookup(Lpn(i)) {
                assert_eq!(f.nand.read(ppn).unwrap(), Lpn(i), "mapping corrupted");
            }
        }
    }
}
