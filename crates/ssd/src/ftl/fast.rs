//! FAST — Fully-Associative Sector Translation (Lee et al., 2007).
//!
//! Like BAST, FAST keeps a block-level data map plus log blocks, but the log
//! pool is **fully associative**: one log block is dedicated to sequential
//! streams (the *SW log*), and the remaining *RW log* blocks accept random
//! writes from *any* logical block (Section V.B). This postpones merges far
//! longer than BAST — an RW log block fills with pages from many logical
//! blocks — but when the RW pool finally overflows, the evicted block forces
//! a *cascade* of full merges, one per logical block with a page inside it
//! ("At the worst case, each individual page in a log block would belong to a
//! different mapping unit and needs expensive full merge operation
//! correspondingly", Section II.C.2).

use super::{FreePool, Ftl, FtlConfig, FtlKind, FtlStats};
use crate::cost::CostBreakdown;
use crate::geometry::{BlockId, Geometry, Lpn, Ppn};
use crate::nand::{NandArray, PageState};
use std::collections::{HashMap, VecDeque};

/// The sequential-write log block: dedicated to one logical block, filled in
/// identity order from offset 0.
#[derive(Debug, Clone, Copy)]
struct SwLog {
    phys: BlockId,
    lbn: u64,
    /// Next expected logical offset (== pages appended).
    next_off: u32,
}

/// Fully-Associative Sector Translation FTL.
pub struct FastFtl {
    geo: Geometry,
    nand: NandArray,
    data_map: Vec<Option<BlockId>>,
    sw: Option<SwLog>,
    /// Currently-filling random log block.
    rw_active: Option<BlockId>,
    /// Filled random log blocks, oldest first (eviction order).
    rw_full: VecDeque<BlockId>,
    /// LPN → physical page, for pages living in RW log blocks.
    page_map: HashMap<u64, Ppn>,
    pool: FreePool,
    max_rw: usize,
    logical_pages: u64,
    stats: FtlStats,
}

impl FastFtl {
    /// Build over a fresh array. The log pool splits into 1 SW log and
    /// `log_blocks - 1` RW logs.
    pub fn new(geo: Geometry, cfg: FtlConfig) -> Self {
        let nand = NandArray::new(geo);
        let logical_pages = cfg.logical_pages(&geo);
        let logical_blocks = (logical_pages / geo.pages_per_block as u64) as usize;
        FastFtl {
            geo,
            nand,
            data_map: vec![None; logical_blocks],
            sw: None,
            rw_active: None,
            rw_full: VecDeque::new(),
            page_map: HashMap::new(),
            pool: FreePool::new((0..geo.blocks_total()).map(BlockId), cfg.wear_aware_alloc),
            max_rw: cfg.log_blocks.saturating_sub(1).max(1),
            logical_pages,
            stats: FtlStats::default(),
        }
    }

    /// Number of RW log blocks currently holding data (full + active).
    pub fn live_rw_blocks(&self) -> usize {
        self.rw_full.len() + usize::from(self.rw_active.is_some())
    }

    fn alloc(&mut self) -> BlockId {
        self.pool
            .alloc(&self.nand)
            .expect("FAST: free pool exhausted (over-provisioning too small)")
    }

    fn erase_release(&mut self, b: BlockId, cost: &mut CostBreakdown) {
        match self.nand.erase(b, false) {
            Ok(()) => {
                cost.erase_on(self.geo.plane_of_block(b));
                self.pool.release(b);
            }
            Err(crate::nand::NandError::WornOut { .. }) => {
                // Spent block: retire instead of returning it to the pool.
                self.stats.retired_blocks += 1;
            }
            Err(e) => panic!("block fully dead at merge: {e}"),
        }
    }

    /// The single valid physical copy of `lpn`, if any.
    fn valid_copy(&self, lpn: Lpn) -> Option<Ppn> {
        if let Some(&ppn) = self.page_map.get(&lpn.0) {
            debug_assert_eq!(self.nand.page_state(ppn), PageState::Valid);
            return Some(ppn);
        }
        let lbn = lpn.lbn(&self.geo);
        let off = lpn.block_offset(&self.geo);
        if let Some(sw) = &self.sw {
            if sw.lbn == lbn && off < sw.next_off {
                let ppn = self.geo.ppn(sw.phys, off);
                if self.nand.page_state(ppn) == PageState::Valid {
                    return Some(ppn);
                }
            }
        }
        if let Some(db) = self.data_map[lbn as usize] {
            let ppn = self.geo.ppn(db, off);
            if self.nand.page_state(ppn) == PageState::Valid {
                return Some(ppn);
            }
        }
        None
    }

    /// Invalidate the current copy of `lpn` before writing a new version.
    fn invalidate_current(&mut self, lpn: Lpn) {
        if let Some(ppn) = self.page_map.remove(&lpn.0) {
            self.nand.invalidate(ppn);
            return;
        }
        if let Some(ppn) = self.valid_copy(lpn) {
            self.nand.invalidate(ppn);
        }
    }

    /// Full merge of one logical block: copy the newest version of every page
    /// into a fresh block; retire the old data block (and the SW log if it
    /// belonged to this block and is now empty).
    fn merge_full(&mut self, lbn: u64, cost: &mut CostBreakdown) {
        let n = self.geo.pages_per_block;
        let new = self.alloc();
        let new_plane = self.geo.plane_of_block(new);
        for off in 0..n {
            let lpn = Lpn(lbn * n as u64 + off as u64);
            if let Some(src) = self.valid_copy(lpn) {
                cost.read_on(self.geo.plane_of_ppn(src));
                self.nand
                    .program_at(new, off, lpn)
                    .expect("fresh merge destination");
                cost.program_on(new_plane);
                self.nand.invalidate(src);
                self.page_map.remove(&lpn.0);
                self.stats.page_copies += 1;
            }
        }
        if let Some(db) = self.data_map[lbn as usize] {
            self.erase_release(db, cost);
        }
        if let Some(sw) = self.sw {
            if sw.lbn == lbn {
                debug_assert_eq!(self.nand.valid_pages(sw.phys), 0);
                self.erase_release(sw.phys, cost);
                self.sw = None;
            }
        }
        self.data_map[lbn as usize] = Some(new);
        self.stats.full_merges += 1;
    }

    /// Reconcile the SW log with its data block and retire it.
    fn merge_sw(&mut self, cost: &mut CostBreakdown) {
        let Some(sw) = self.sw else { return };
        let n = self.geo.pages_per_block;
        let valid = self.nand.valid_pages(sw.phys);
        let full = sw.next_off == n;

        if full && valid == n {
            // Switch merge: every offset's newest version is in the SW log.
            if let Some(db) = self.data_map[sw.lbn as usize] {
                self.erase_release(db, cost);
            }
            self.data_map[sw.lbn as usize] = Some(sw.phys);
            self.sw = None;
            self.stats.switch_merges += 1;
            return;
        }

        if valid == sw.next_off {
            // Clean sequential prefix: copy the tail from the data block.
            let old_data = self.data_map[sw.lbn as usize];
            for off in sw.next_off..n {
                if let Some(db) = old_data {
                    let src = self.geo.ppn(db, off);
                    if self.nand.page_state(src) == PageState::Valid {
                        let lpn = Lpn(sw.lbn * n as u64 + off as u64);
                        cost.read_on(self.geo.plane_of_block(db));
                        self.nand
                            .program_at(sw.phys, off, lpn)
                            .expect("tail pages of SW log are free");
                        cost.program_on(self.geo.plane_of_block(sw.phys));
                        self.nand.invalidate(src);
                        self.stats.page_copies += 1;
                    }
                }
            }
            if let Some(db) = old_data {
                self.erase_release(db, cost);
            }
            self.data_map[sw.lbn as usize] = Some(sw.phys);
            self.sw = None;
            self.stats.partial_merges += 1;
            return;
        }

        // Holes in the SW log (later random writes superseded pages): fall
        // back to a full merge, which gathers from all locations and clears
        // the SW state.
        self.merge_full(sw.lbn, cost);
        debug_assert!(self.sw.is_none());
    }

    fn append_sw(&mut self, lpn: Lpn, cost: &mut CostBreakdown) {
        self.invalidate_current(lpn);
        let sw = self.sw.as_mut().expect("SW log active");
        let phys = sw.phys;
        sw.next_off += 1;
        let n = self.geo.pages_per_block;
        let full = sw.next_off == n;
        self.nand
            .program_append(phys, lpn)
            .expect("SW log has room");
        cost.bus(1);
        cost.program_on(self.geo.plane_of_block(phys));
        if full {
            self.merge_sw(cost);
        }
    }

    /// Evict the oldest full RW log block: full-merge every logical block
    /// with a page inside it, then erase (the merge cascade).
    fn evict_rw(&mut self, cost: &mut CostBreakdown) {
        let victim = self.rw_full.pop_front().expect("evict called when full");
        let mut lbns: Vec<u64> = self
            .nand
            .valid_entries(victim)
            .into_iter()
            .map(|(_, lpn)| lpn.lbn(&self.geo))
            .collect();
        lbns.sort_unstable();
        lbns.dedup();
        for lbn in lbns {
            self.merge_full(lbn, cost);
        }
        debug_assert_eq!(self.nand.valid_pages(victim), 0);
        self.erase_release(victim, cost);
    }

    fn append_rw(&mut self, lpn: Lpn, cost: &mut CostBreakdown) {
        // Ensure an RW block with headroom.
        let need_new = match self.rw_active {
            None => true,
            Some(b) => {
                if self.nand.free_pages(b) == 0 {
                    self.rw_full.push_back(b);
                    self.rw_active = None;
                    true
                } else {
                    false
                }
            }
        };
        if need_new {
            if self.rw_full.len() >= self.max_rw {
                self.evict_rw(cost);
            }
            self.rw_active = Some(self.alloc());
        }
        let blk = self.rw_active.expect("just ensured");
        self.invalidate_current(lpn);
        let ppn = self.nand.program_append(blk, lpn).expect("RW log has room");
        self.page_map.insert(lpn.0, ppn);
        cost.bus(1);
        cost.program_on(self.geo.plane_of_block(blk));
    }

    fn write_page(&mut self, lpn: Lpn, cost: &mut CostBreakdown) {
        let lbn = lpn.lbn(&self.geo);
        let off = lpn.block_offset(&self.geo);
        if off == 0 {
            // A new sequential stream starts: retire any active SW log and
            // dedicate a fresh one to this block.
            self.merge_sw(cost);
            let phys = self.alloc();
            self.sw = Some(SwLog {
                phys,
                lbn,
                next_off: 0,
            });
            self.append_sw(lpn, cost);
            return;
        }
        if let Some(sw) = &self.sw {
            if sw.lbn == lbn && sw.next_off == off {
                self.append_sw(lpn, cost);
                return;
            }
        }
        self.append_rw(lpn, cost);
    }
}

impl Ftl for FastFtl {
    fn write(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "write beyond logical capacity"
        );
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            self.write_page(Lpn(start.0 + i as u64), &mut cost);
        }
        cost
    }

    fn read(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "read beyond logical capacity"
        );
        let mut cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            let lpn = Lpn(start.0 + i as u64);
            cost.bus(1);
            if let Some(ppn) = self.valid_copy(lpn) {
                cost.read_on(self.geo.plane_of_ppn(ppn));
            }
        }
        cost
    }

    fn trim(&mut self, start: Lpn, pages: u32) -> CostBreakdown {
        assert!(
            start.0 + pages as u64 <= self.logical_pages,
            "trim beyond logical capacity"
        );
        let cost = CostBreakdown::new(self.geo.planes_total());
        for i in 0..pages {
            self.invalidate_current(Lpn(start.0 + i as u64));
        }
        cost
    }

    fn logical_pages(&self) -> u64 {
        self.logical_pages
    }

    fn kind(&self) -> FtlKind {
        FtlKind::Fast
    }

    fn ftl_stats(&self) -> FtlStats {
        self.stats
    }

    fn nand(&self) -> &NandArray {
        &self.nand
    }

    fn nand_mut(&mut self) -> &mut NandArray {
        &mut self.nand
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fc_simkit::DetRng;

    fn ftl() -> FastFtl {
        FastFtl::new(Geometry::tiny(), FtlConfig::tiny_test())
    }

    fn check(f: &FastFtl, lpn: u64) {
        let copy = f.valid_copy(Lpn(lpn)).expect("page exists");
        assert_eq!(f.nand.read(copy).unwrap(), Lpn(lpn));
    }

    #[test]
    fn full_sequential_block_switch_merges() {
        let mut f = ftl();
        let n = f.geo.pages_per_block;
        let cost = f.write(Lpn(0), n);
        // Filling the SW log exactly triggers an immediate switch merge.
        assert_eq!(f.ftl_stats().switch_merges, 1);
        assert_eq!(f.ftl_stats().page_copies, 0);
        assert_eq!(cost.total_erases(), 0); // no old data block existed
        assert!(f.sw.is_none());
        for i in 0..n as u64 {
            check(&f, i);
        }
    }

    #[test]
    fn new_stream_retires_previous_sw_with_partial_merge() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        f.write(Lpn(0), 2); // sequential prefix of block 0 in SW
        f.write(Lpn(n), 1); // offset 0 of block 1 → merges block 0's SW first
        let s = f.ftl_stats();
        assert_eq!(s.partial_merges, 1, "stats {s:?}");
        check(&f, 0);
        check(&f, 1);
        check(&f, n);
    }

    #[test]
    fn random_writes_go_to_rw_log_and_survive() {
        let mut f = ftl();
        // Offsets != 0 with no active SW stream land in RW logs.
        f.write(Lpn(1), 1);
        f.write(Lpn(7), 1);
        f.write(Lpn(13), 1);
        assert_eq!(f.live_rw_blocks(), 1);
        assert_eq!(f.page_map.len(), 3);
        check(&f, 1);
        check(&f, 7);
        check(&f, 13);
    }

    #[test]
    fn rw_overflow_triggers_merge_cascade() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        let logical_blocks = f.data_map.len() as u64;
        // Scatter single-page writes (offset 1 of distinct blocks) until the
        // RW pool overflows. Each eviction full-merges several blocks.
        let writes = (f.max_rw as u64 + 2) * n + 4;
        for i in 0..writes {
            let lbn = i % logical_blocks;
            f.write(Lpn(lbn * n + 1 + (i / logical_blocks) % (n - 1)), 1);
        }
        let s = f.ftl_stats();
        assert!(s.full_merges > 0, "expected cascade, stats {s:?}");
        assert!(s.page_copies > 0);
        assert!(f.nand.total_erases() > 0);
    }

    #[test]
    fn rw_pool_respects_cap() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        for i in 0..200u64 {
            let lbn = i % (f.data_map.len() as u64);
            f.write(Lpn(lbn * n + 1), 1);
            assert!(f.live_rw_blocks() <= f.max_rw + 1);
        }
    }

    #[test]
    fn sw_with_holes_falls_back_to_full_merge() {
        let mut f = ftl();
        let n = f.geo.pages_per_block as u64;
        f.write(Lpn(0), 2); // SW holds offsets 0,1 of block 0
        f.write(Lpn(1), 1); // random rewrite of offset 1 → RW, hole in SW
        f.write(Lpn(n), 1); // new stream → SW merge must not resurrect stale page 1
        let s = f.ftl_stats();
        assert!(s.full_merges >= 1, "stats {s:?}");
        check(&f, 0);
        check(&f, 1);
        check(&f, n);
    }

    #[test]
    fn overwrite_via_mixed_paths_keeps_single_valid_copy() {
        let mut f = ftl();
        let n = f.geo.pages_per_block;
        f.write(Lpn(0), n); // switch-merged data block
        f.write(Lpn(2), 1); // RW overwrite of offset 2
                            // Exactly one valid copy of page 2.
        check(&f, 2);
        let db = f.data_map[0].unwrap();
        let data_page = f.geo.ppn(db, 2);
        assert_eq!(f.nand.page_state(data_page), PageState::Invalid);
    }

    #[test]
    fn data_survives_heavy_random_churn() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let mut rng = DetRng::new(21);
        let mut written = std::collections::HashSet::new();
        for _ in 0..5000 {
            let lpn = rng.below(logical);
            f.write(Lpn(lpn), 1);
            written.insert(lpn);
        }
        for &lpn in &written {
            check(&f, lpn);
        }
    }

    #[test]
    fn data_survives_mixed_sequential_and_random_churn() {
        let mut f = ftl();
        let logical = f.logical_pages();
        let n = f.geo.pages_per_block as u64;
        let mut rng = DetRng::new(22);
        let mut written = std::collections::HashSet::new();
        for _ in 0..800 {
            if rng.chance(0.4) {
                // Sequential run, possibly spanning blocks.
                let len = rng.range_inclusive(2, 2 * n).min(logical);
                let start = rng.below(logical - len + 1);
                f.write(Lpn(start), len as u32);
                for l in start..start + len {
                    written.insert(l);
                }
            } else {
                let lpn = rng.below(logical);
                f.write(Lpn(lpn), 1);
                written.insert(lpn);
            }
        }
        for &lpn in &written {
            check(&f, lpn);
        }
    }

    #[test]
    fn reads_charge_bus_always_and_cell_reads_when_mapped() {
        let mut f = ftl();
        f.write(Lpn(1), 1);
        let c = f.read(Lpn(0), 3);
        assert_eq!(c.bus_transfers, 3);
        assert_eq!(c.total_reads(), 1);
    }
}
