//! Service-time accounting for flash operations.
//!
//! The FTLs record *what happened* (bus transfers, per-plane reads/programs,
//! per-plane erases) in a [`CostBreakdown`]; the device layer converts that
//! into a service time under the parallelism model of Section II.C.4:
//!
//! * The serial data bus is shared — every host page transfer serialises
//!   (100 µs each in Table II).
//! * Cell-array operations (read / program / erase) on *different planes*
//!   proceed concurrently; operations on the same plane serialise. This is
//!   the striping/interleaving optimisation that gives sequential writes
//!   their bandwidth advantage, and that random single-page writes cannot
//!   exploit.
//! * GC copy-backs move pages through the on-die register without touching
//!   the external bus.
//!
//! The resulting service time is
//! `bus·t_bus + max_plane(reads)·t_read + max_plane(programs)·t_prog +
//!  max_plane(erases)·t_erase`, a standard first-order interleaving model.

use crate::timing::TimingParams;
use fc_simkit::SimDuration;
use serde::{Deserialize, Serialize};

/// Per-request operation counts, split per plane where parallelism applies.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Host page transfers over the serial bus (reads out + writes in).
    pub bus_transfers: u64,
    /// Cell-array page reads, per plane.
    pub plane_reads: Vec<u64>,
    /// Cell-array page programs, per plane.
    pub plane_programs: Vec<u64>,
    /// Block erases, per plane.
    pub plane_erases: Vec<u64>,
}

impl CostBreakdown {
    /// An empty breakdown for a device with `planes` planes.
    pub fn new(planes: u32) -> Self {
        let planes = planes.max(1) as usize;
        CostBreakdown {
            bus_transfers: 0,
            plane_reads: vec![0; planes],
            plane_programs: vec![0; planes],
            plane_erases: vec![0; planes],
        }
    }

    /// Record a host transfer of one page over the serial bus.
    #[inline]
    pub fn bus(&mut self, pages: u64) {
        self.bus_transfers += pages;
    }

    /// Record a cell-array read on `plane`.
    #[inline]
    pub fn read_on(&mut self, plane: u32) {
        let idx = plane as usize % self.plane_reads.len();
        self.plane_reads[idx] += 1;
    }

    /// Record a cell-array program on `plane`.
    #[inline]
    pub fn program_on(&mut self, plane: u32) {
        let idx = plane as usize % self.plane_programs.len();
        self.plane_programs[idx] += 1;
    }

    /// Record a block erase on `plane`.
    #[inline]
    pub fn erase_on(&mut self, plane: u32) {
        let idx = plane as usize % self.plane_erases.len();
        self.plane_erases[idx] += 1;
    }

    /// Total cell-array reads.
    pub fn total_reads(&self) -> u64 {
        self.plane_reads.iter().sum()
    }

    /// Total cell-array programs.
    pub fn total_programs(&self) -> u64 {
        self.plane_programs.iter().sum()
    }

    /// Total block erases.
    pub fn total_erases(&self) -> u64 {
        self.plane_erases.iter().sum()
    }

    /// Merge another breakdown (same plane count) into this one.
    pub fn absorb(&mut self, other: &CostBreakdown) {
        debug_assert_eq!(self.plane_reads.len(), other.plane_reads.len());
        self.bus_transfers += other.bus_transfers;
        for (a, b) in self.plane_reads.iter_mut().zip(&other.plane_reads) {
            *a += b;
        }
        for (a, b) in self.plane_programs.iter_mut().zip(&other.plane_programs) {
            *a += b;
        }
        for (a, b) in self.plane_erases.iter_mut().zip(&other.plane_erases) {
            *a += b;
        }
    }

    /// Convert to a service time under the interleaving model.
    pub fn service_time(&self, t: &TimingParams) -> SimDuration {
        let max = |v: &[u64]| v.iter().copied().max().unwrap_or(0);
        t.bus_transfer.saturating_mul(self.bus_transfers)
            + t.page_read.saturating_mul(max(&self.plane_reads))
            + t.page_program.saturating_mul(max(&self.plane_programs))
            + t.block_erase.saturating_mul(max(&self.plane_erases))
    }

    /// Service time with *no* plane parallelism (all operations serialise).
    /// Used as the pessimistic bound in ablations.
    pub fn serial_service_time(&self, t: &TimingParams) -> SimDuration {
        t.bus_transfer.saturating_mul(self.bus_transfers)
            + t.page_read.saturating_mul(self.total_reads())
            + t.page_program.saturating_mul(self.total_programs())
            + t.block_erase.saturating_mul(self.total_erases())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> TimingParams {
        TimingParams::table2()
    }

    #[test]
    fn striped_writes_parallelise_programs() {
        // 4 pages over 4 planes: bus serialises, programs overlap.
        let mut c = CostBreakdown::new(4);
        for p in 0..4 {
            c.bus(1);
            c.program_on(p);
        }
        let expect = SimDuration::from_micros(4 * 100 + 200);
        assert_eq!(c.service_time(&t()), expect);
        // The serial model charges all four programs.
        let serial = SimDuration::from_micros(4 * 100 + 4 * 200);
        assert_eq!(c.serial_service_time(&t()), serial);
    }

    #[test]
    fn same_plane_writes_serialise() {
        let mut c = CostBreakdown::new(4);
        for _ in 0..4 {
            c.bus(1);
            c.program_on(2);
        }
        let expect = SimDuration::from_micros(4 * 100 + 4 * 200);
        assert_eq!(c.service_time(&t()), expect);
    }

    #[test]
    fn copy_back_has_no_bus_component() {
        let mut c = CostBreakdown::new(2);
        c.read_on(0);
        c.program_on(0);
        assert_eq!(c.service_time(&t()), SimDuration::from_micros(225));
    }

    #[test]
    fn erases_counted_per_plane() {
        let mut c = CostBreakdown::new(2);
        c.erase_on(0);
        c.erase_on(1);
        assert_eq!(c.total_erases(), 2);
        // Two erases on different planes overlap.
        assert_eq!(c.service_time(&t()), SimDuration::from_micros(1500));
    }

    #[test]
    fn absorb_adds_counts() {
        let mut a = CostBreakdown::new(2);
        a.bus(1);
        a.program_on(0);
        let mut b = CostBreakdown::new(2);
        b.bus(2);
        b.program_on(1);
        b.read_on(0);
        b.erase_on(1);
        a.absorb(&b);
        assert_eq!(a.bus_transfers, 3);
        assert_eq!(a.total_programs(), 2);
        assert_eq!(a.total_reads(), 1);
        assert_eq!(a.total_erases(), 1);
    }

    #[test]
    fn plane_index_wraps() {
        let mut c = CostBreakdown::new(2);
        c.program_on(5); // wraps to plane 1
        assert_eq!(c.plane_programs, vec![0, 1]);
    }

    #[test]
    fn empty_breakdown_is_free() {
        let c = CostBreakdown::new(4);
        assert_eq!(c.service_time(&t()), SimDuration::ZERO);
    }
}
