//! Property-based tests for the flash simulator.
//!
//! The central property: **every FTL is a correct block device**. For any
//! operation sequence, each logical page's valid physical copy holds exactly
//! the LPN the host last wrote there (the NAND owner check), no acknowledged
//! page disappears, and physical invariants (erase-before-reuse, single
//! valid copy) hold throughout.

use fc_ssd::ftl::build_ftl;
use fc_ssd::{FtlConfig, FtlKind, Geometry, Lpn, Ssd, SsdConfig};
use proptest::prelude::*;
use std::collections::HashSet;

/// An abstract host operation.
#[derive(Debug, Clone, Copy)]
enum HostOp {
    Write { lpn_frac: f64, pages: u32 },
    Read { lpn_frac: f64, pages: u32 },
}

fn op_strategy() -> impl Strategy<Value = HostOp> {
    prop_oneof![
        3 => (0.0f64..1.0, 1u32..6).prop_map(|(lpn_frac, pages)| HostOp::Write { lpn_frac, pages }),
        1 => (0.0f64..1.0, 1u32..6).prop_map(|(lpn_frac, pages)| HostOp::Read { lpn_frac, pages }),
    ]
}

fn check_ftl(kind: FtlKind, ops: &[HostOp]) -> Result<(), TestCaseError> {
    let geo = Geometry::tiny();
    let cfg = FtlConfig::tiny_test();
    let mut ftl = build_ftl(kind, geo, cfg);
    let logical = ftl.logical_pages();
    let mut written: HashSet<u64> = HashSet::new();

    for op in ops {
        match *op {
            HostOp::Write { lpn_frac, pages } => {
                let max_start = logical - pages as u64;
                let lpn = ((lpn_frac * max_start as f64) as u64).min(max_start);
                let cost = ftl.write(Lpn(lpn), pages);
                prop_assert!(cost.total_programs() >= pages as u64);
                for i in 0..pages as u64 {
                    written.insert(lpn + i);
                }
            }
            HostOp::Read { lpn_frac, pages } => {
                let max_start = logical - pages as u64;
                let lpn = ((lpn_frac * max_start as f64) as u64).min(max_start);
                let cost = ftl.read(Lpn(lpn), pages);
                prop_assert_eq!(cost.bus_transfers, pages as u64);
                prop_assert_eq!(cost.total_programs(), 0);
                prop_assert_eq!(cost.total_erases(), 0);
            }
        }
        // Global physical invariant: the number of valid pages across the
        // array equals the number of distinct written LPNs (single valid
        // copy per page, none lost).
    }
    let nand = ftl.nand();
    let valid_total: u64 = (0..geo.blocks_total())
        .map(|b| nand.valid_pages(fc_ssd::BlockId(b)) as u64)
        .sum();
    prop_assert_eq!(
        valid_total,
        written.len() as u64,
        "valid copies != written pages for {}",
        kind
    );
    // Ownership check: every valid physical page holds a written LPN, and
    // each exactly once.
    let mut seen = HashSet::new();
    for b in 0..geo.blocks_total() {
        for (off, lpn) in nand.valid_entries(fc_ssd::BlockId(b)) {
            let _ = off;
            prop_assert!(written.contains(&lpn.0), "phantom page {lpn:?}");
            prop_assert!(seen.insert(lpn.0), "duplicate valid copy of {lpn:?}");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn page_ftl_is_a_correct_block_device(ops in prop::collection::vec(op_strategy(), 1..250)) {
        check_ftl(FtlKind::PageLevel, &ops)?;
    }

    #[test]
    fn bast_is_a_correct_block_device(ops in prop::collection::vec(op_strategy(), 1..250)) {
        check_ftl(FtlKind::Bast, &ops)?;
    }

    #[test]
    fn fast_is_a_correct_block_device(ops in prop::collection::vec(op_strategy(), 1..250)) {
        check_ftl(FtlKind::Fast, &ops)?;
    }

    #[test]
    fn dftl_is_a_correct_block_device(ops in prop::collection::vec(op_strategy(), 1..250)) {
        check_ftl(FtlKind::Dftl, &ops)?;
    }

    /// Write amplification is >= 1 once anything is written, for all FTLs.
    #[test]
    fn write_amplification_at_least_one(
        kind_idx in 0usize..4,
        ops in prop::collection::vec((0.0f64..1.0, 1u32..4), 5..120),
    ) {
        let kind = FtlKind::ALL_EXTENDED[kind_idx];
        let mut ssd = Ssd::new(SsdConfig::tiny(kind));
        let logical = ssd.logical_pages();
        for (frac, pages) in ops {
            let max_start = logical - pages as u64;
            let lpn = ((frac * max_start as f64) as u64).min(max_start);
            ssd.write(Lpn(lpn), pages);
        }
        prop_assert!(ssd.stats().write_amplification() >= 1.0 - 1e-12);
        // Erase accounting is consistent between device views.
        prop_assert_eq!(ssd.erases_since_reset(), ssd.wear_report().total_erases);
    }

    /// Preconditioning is deterministic in its seed.
    #[test]
    fn preconditioning_is_deterministic(seed in 0u64..100) {
        use fc_simkit::DetRng;
        let run = |seed| {
            let mut ssd = Ssd::new(SsdConfig::tiny(FtlKind::Bast));
            let mut rng = DetRng::new(seed);
            ssd.precondition(0.8, 0.4, &mut rng);
            (ssd.wear_report().total_erases, ssd.ftl_stats().merges())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Service times are positive and monotone in request size for reads.
    #[test]
    fn read_cost_monotone_in_size(pages_a in 1u32..8, extra in 1u32..8) {
        let mut ssd = Ssd::new(SsdConfig::tiny(FtlKind::PageLevel));
        // Populate so reads hit mapped pages.
        ssd.write(Lpn(0), 16);
        let ta = ssd.read(Lpn(0), pages_a);
        let tb = ssd.read(Lpn(0), pages_a + extra);
        prop_assert!(tb >= ta);
    }
}
