//! A stable discrete-event queue.
//!
//! [`EventQueue`] orders events by timestamp and breaks ties in insertion
//! order (FIFO), which keeps simulations deterministic: two events scheduled
//! for the same instant always pop in the order they were pushed, regardless
//! of heap internals.
//!
//! The queue is data-driven — it stores plain event payloads rather than
//! boxed closures — so simulations remain easy to snapshot, test and replay.

use crate::time::SimTime;
use fc_obs::Gauge;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event payload tagged with its due time and a monotone sequence number.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then lowest-seq)
        // event is the heap maximum.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered, FIFO-tie-breaking event queue.
///
/// ```
/// use fc_simkit::event::EventQueue;
/// use fc_simkit::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop().unwrap().1, "early");
/// assert_eq!(q.pop().unwrap().1, "early-second");
/// assert_eq!(q.pop().unwrap().1, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimTime,
    /// Optional observability hook: mirrors `len()` after every mutation.
    depth_gauge: Option<Gauge>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            depth_gauge: None,
        }
    }

    /// Mirror the queue depth into `gauge` (typically
    /// `registry.gauge("simkit.event_queue.depth")`) after every push, pop
    /// and clear.
    pub fn attach_depth_gauge(&mut self, gauge: Gauge) {
        gauge.set_u64(self.heap.len() as u64);
        self.depth_gauge = Some(gauge);
    }

    #[inline]
    fn sync_depth(&self) {
        if let Some(g) = &self.depth_gauge {
            g.set_u64(self.heap.len() as u64);
        }
    }

    /// The current simulation clock: the due time of the most recently popped
    /// event (never moves backwards).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// Scheduling in the past is clamped to `now` — a common footgun when an
    /// event handler computes a due time from stale state.
    pub fn push(&mut self, at: SimTime, payload: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        self.sync_depth();
    }

    /// Schedule `payload` `delay` after the current clock.
    pub fn push_after(&mut self, delay: crate::time::SimDuration, payload: E) {
        let at = self.now + delay;
        self.push(at, payload);
    }

    /// Pop the earliest event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        debug_assert!(ev.at >= self.now, "event queue time went backwards");
        self.now = ev.at;
        self.sync_depth();
        Some((ev.at, ev.payload))
    }

    /// Due time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Drop all pending events and reset the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.now = SimTime::ZERO;
        self.next_seq = 0;
        self.sync_depth();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), 3u32);
        q.push(SimTime::from_nanos(10), 1);
        q.push(SimTime::from_nanos(20), 2);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100u32 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(50), ());
        q.push(SimTime::from_nanos(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(50));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "a");
        q.pop();
        q.push(SimTime::from_nanos(10), "stale");
        let (at, e) = q.pop().unwrap();
        assert_eq!(e, "stale");
        assert_eq!(at, SimTime::from_nanos(100));
    }

    #[test]
    fn push_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(100), "base");
        q.pop();
        q.push_after(SimDuration::from_nanos(5), "next");
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(105)));
    }

    #[test]
    fn depth_gauge_tracks_len() {
        let reg = fc_obs::Registry::new();
        let gauge = reg.gauge("simkit.event_queue.depth");
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), ());
        q.attach_depth_gauge(gauge.clone());
        assert_eq!(gauge.get(), 1.0, "attach syncs the current depth");
        q.push(SimTime::from_nanos(2), ());
        q.push(SimTime::from_nanos(3), ());
        assert_eq!(gauge.get(), 3.0);
        q.pop();
        assert_eq!(gauge.get(), 2.0);
        q.clear();
        assert_eq!(gauge.get(), 0.0);
    }

    #[test]
    fn clear_resets_everything() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(1), 1);
        q.pop();
        q.push(SimTime::from_nanos(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 0);
    }
}
