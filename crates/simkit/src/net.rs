//! Network link model.
//!
//! FlashCoop replicates every buffered write to the partner server over a
//! "high speed data center network (i.e. 10 Gbit Ethernet)". For the
//! trace-replay experiments we only need the *cost* of that hop:
//!
//! `transfer_time(bytes) = propagation latency + bytes / bandwidth`
//!
//! which for a 4 KB page on 10 GbE is ≈ 10 µs + 3.3 µs ≈ 13 µs — an order of
//! magnitude cheaper than a 200 µs flash program, which is the entire premise
//! of remote buffering (Section III.A "Design Rationale", reason 2).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// A point-to-point link characterised by one-way latency and bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation + protocol latency.
    pub latency: SimDuration,
    /// Usable bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
}

impl LinkModel {
    /// A 10 Gbit Ethernet profile: ~10 µs one-way latency, ~1.1 GiB/s usable
    /// bandwidth (10 Gbit/s less framing overhead).
    pub fn ten_gbe() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(10),
            bandwidth_bytes_per_sec: 1_150_000_000,
        }
    }

    /// A 1 Gbit Ethernet profile for sensitivity studies.
    pub fn one_gbe() -> Self {
        LinkModel {
            latency: SimDuration::from_micros(50),
            bandwidth_bytes_per_sec: 110_000_000,
        }
    }

    /// An effectively-free link (e.g. colocated processes); useful to isolate
    /// buffer-management effects from network effects in ablations.
    pub fn ideal() -> Self {
        LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: u64::MAX,
        }
    }

    /// Serialisation (bandwidth) component of a transfer.
    pub fn serialization_time(&self, bytes: u64) -> SimDuration {
        if self.bandwidth_bytes_per_sec == 0 {
            return SimDuration::MAX;
        }
        if self.bandwidth_bytes_per_sec == u64::MAX {
            return SimDuration::ZERO;
        }
        // ceil(bytes * 1e9 / bw) without overflow for realistic sizes.
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(self.bandwidth_bytes_per_sec as u128);
        SimDuration::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// One-way transfer time for `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + self.serialization_time(bytes)
    }

    /// Round trip for a request of `bytes` answered by a small ack: the
    /// latency of a replicated write as seen by the writer.
    pub fn replicated_write_time(&self, bytes: u64) -> SimDuration {
        // Data out (latency + serialisation) + ack back (latency only; acks
        // are tiny).
        self.transfer_time(bytes) + self.latency
    }
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel::ten_gbe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_gbe_page_transfer_is_cheap_relative_to_flash_program() {
        let link = LinkModel::ten_gbe();
        let page = link.replicated_write_time(4096);
        let program = SimDuration::from_micros(200);
        assert!(
            page < program / 4,
            "replication ({page}) should be far cheaper than a program ({program})"
        );
    }

    #[test]
    fn serialization_scales_linearly() {
        let link = LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 1_000_000_000, // 1 GB/s
        };
        assert_eq!(
            link.serialization_time(1_000_000),
            SimDuration::from_micros(1_000)
        );
        assert_eq!(link.transfer_time(2_000_000), SimDuration::from_millis(2));
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let link = LinkModel::ten_gbe();
        assert_eq!(link.transfer_time(0), link.latency);
    }

    #[test]
    fn ideal_link_is_free() {
        let link = LinkModel::ideal();
        assert_eq!(link.replicated_write_time(1 << 30), SimDuration::ZERO);
    }

    #[test]
    fn zero_bandwidth_saturates() {
        let link = LinkModel {
            latency: SimDuration::from_micros(1),
            bandwidth_bytes_per_sec: 0,
        };
        assert_eq!(link.serialization_time(1), SimDuration::MAX);
        assert_eq!(link.transfer_time(1), SimDuration::MAX);
    }

    #[test]
    fn serialization_rounds_up() {
        let link = LinkModel {
            latency: SimDuration::ZERO,
            bandwidth_bytes_per_sec: 3,
        };
        // 1 byte at 3 B/s = 333,333,333.3 ns, must round up.
        assert_eq!(
            link.serialization_time(1),
            SimDuration::from_nanos(333_333_334)
        );
    }

    #[test]
    fn one_gbe_slower_than_ten_gbe() {
        let b = 64 * 1024;
        assert!(LinkModel::one_gbe().transfer_time(b) > LinkModel::ten_gbe().transfer_time(b));
    }
}
