//! Simulated time.
//!
//! All simulated clocks in the FlashCoop reproduction use a nanosecond tick
//! carried in a `u64`. A `u64` of nanoseconds covers ~584 years of simulated
//! time, far beyond any trace replay. Two newtypes keep instants and spans
//! from being mixed up:
//!
//! * [`SimTime`] — an instant (nanoseconds since the start of the simulation).
//! * [`SimDuration`] — a span between instants.
//!
//! Arithmetic is saturating rather than panicking: an experiment that
//! overflows the clock pins to the far future instead of aborting, which keeps
//! pathological parameter sweeps (e.g. a zero-bandwidth link) inspectable.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, measured in nanoseconds from simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; used as an "infinity" sentinel for idle resources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000))
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration from an earlier instant, saturating to zero if `earlier` is
    /// actually later (clock skew never goes negative).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Maximum representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000_000))
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000_000))
    }

    /// Construct from fractional seconds, saturating on overflow or NaN.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Span in fractional microseconds (for reporting).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Span in fractional milliseconds (for reporting).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Span as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating multiply by an integer count (e.g. per-page costs).
    #[inline]
    pub fn saturating_mul(self, n: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(n))
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn instant_plus_span_round_trips() {
        let t = SimTime::from_micros(5);
        let d = SimDuration::from_micros(7);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(50);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(40));
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX;
        assert_eq!(t + SimDuration::from_secs(1), SimTime::MAX);
        let d = SimDuration::MAX;
        assert_eq!(d + SimDuration::from_nanos(1), SimDuration::MAX);
        assert_eq!(d.saturating_mul(3), SimDuration::MAX);
    }

    #[test]
    fn from_secs_f64_handles_edge_cases() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn division_never_divides_by_zero() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d / 0, d); // divisor clamped to 1
        assert_eq!(d / 4, SimDuration::from_nanos(25));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(25).to_string(), "25.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn sum_and_ordering() {
        let total: SimDuration = (1..=4).map(SimDuration::from_nanos).sum();
        assert_eq!(total, SimDuration::from_nanos(10));
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(
            SimTime::from_nanos(1).max(SimTime::from_nanos(2)),
            SimTime::from_nanos(2)
        );
        assert_eq!(
            SimTime::from_nanos(1).min(SimTime::from_nanos(2)),
            SimTime::from_nanos(1)
        );
    }
}
