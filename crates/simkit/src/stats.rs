//! Streaming statistics used by the metric collectors.
//!
//! * [`Welford`] — numerically stable streaming mean/variance.
//! * [`LatencyStats`] — mean + exact percentiles over retained samples of
//!   [`SimDuration`]s (experiments retain every response time; runs are small
//!   enough that exact percentiles beat sketches for reproducibility).
//! * [`SizeHistogram`] — the write-length histogram behind the paper's
//!   Figure 8 CDFs, bucketed at the exact page counts the paper plots
//!   (1, 2, 4, 8, 16, 32, 64).

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// Welford's online algorithm for mean and variance.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean of the observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merge another accumulator into this one (Chan et al. parallel update).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
    }
}

/// Response-time accumulator: streaming mean plus retained samples for exact
/// percentiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyStats {
    agg: Welford,
    samples_ns: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        LatencyStats::default()
    }

    /// Record one latency sample.
    pub fn push(&mut self, d: SimDuration) {
        self.agg.push(d.as_nanos() as f64);
        self.samples_ns.push(d.as_nanos());
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.agg.count()
    }

    /// Mean latency.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_nanos(self.agg.mean().round() as u64)
    }

    /// Standard deviation of the latencies.
    pub fn stddev(&self) -> SimDuration {
        SimDuration::from_nanos(self.agg.stddev().round() as u64)
    }

    /// Exact percentile `p` in `[0, 100]` using nearest-rank; zero when empty.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples_ns.is_empty() {
            return SimDuration::ZERO;
        }
        if !self.sorted {
            self.samples_ns.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0) * self.samples_ns.len() as f64).ceil() as usize;
        let idx = rank.saturating_sub(1).min(self.samples_ns.len() - 1);
        SimDuration::from_nanos(self.samples_ns[idx])
    }

    /// Largest sample seen.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.samples_ns.iter().copied().max().unwrap_or(0))
    }

    /// Merge samples from another accumulator.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.agg.merge(&other.agg);
        self.samples_ns.extend_from_slice(&other.samples_ns);
        self.sorted = false;
    }

    /// Dump this accumulator into `reg` under `prefix` (e.g.
    /// `"ssd.write_service"` → `ssd.write_service.count`, `.mean_ns`,
    /// `.p50_ns`, `.p99_ns`, `.p999_ns`, `.max_ns`).
    pub fn emit_with_prefix(&self, prefix: &str, reg: &mut fc_obs::Registry) {
        // `percentile` sorts lazily behind `&mut self`; snapshot the samples
        // so emitting stays a `&self` operation.
        let mut sorted = self.clone();
        reg.counter(&format!("{prefix}.count")).store(self.count());
        reg.gauge(&format!("{prefix}.mean_ns")).set(self.agg.mean());
        for (name, p) in [("p50_ns", 50.0), ("p99_ns", 99.0), ("p999_ns", 99.9)] {
            reg.gauge(&format!("{prefix}.{name}"))
                .set(sorted.percentile(p).as_nanos() as f64);
        }
        reg.gauge(&format!("{prefix}.max_ns"))
            .set(self.max().as_nanos() as f64);
    }
}

/// Dumps under the generic prefix `"latency"`; callers that track several
/// accumulators use [`LatencyStats::emit_with_prefix`] instead.
impl fc_obs::StatSource for LatencyStats {
    fn emit(&self, reg: &mut fc_obs::Registry) {
        self.emit_with_prefix("latency", reg);
    }
}

/// Histogram of write lengths in pages, matching Figure 8's x-axis buckets.
///
/// `record(k)` files a k-page write; [`SizeHistogram::cdf`] yields the
/// cumulative fraction of *writes* at or below each bucket edge, which is what
/// the paper plots ("percentage of written pages whose sizes are less than a
/// certain value").
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SizeHistogram {
    /// counts[i] = number of writes with length in (edges[i-1], edges[i]].
    counts: Vec<u64>,
    total_writes: u64,
    total_pages: u64,
}

/// Bucket edges in pages, as plotted by the paper.
pub const SIZE_EDGES: [u64; 7] = [1, 2, 4, 8, 16, 32, 64];

impl SizeHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        SizeHistogram {
            counts: vec![0; SIZE_EDGES.len() + 1],
            total_writes: 0,
            total_pages: 0,
        }
    }

    /// Record one write of `pages` pages (zero-length writes are ignored).
    pub fn record(&mut self, pages: u64) {
        if pages == 0 {
            return;
        }
        if self.counts.is_empty() {
            self.counts = vec![0; SIZE_EDGES.len() + 1];
        }
        let idx = SIZE_EDGES
            .iter()
            .position(|&e| pages <= e)
            .unwrap_or(SIZE_EDGES.len());
        self.counts[idx] += 1;
        self.total_writes += 1;
        self.total_pages += pages;
    }

    /// Total number of writes recorded.
    pub fn writes(&self) -> u64 {
        self.total_writes
    }

    /// Total number of pages written.
    pub fn pages(&self) -> u64 {
        self.total_pages
    }

    /// Mean write length in pages.
    pub fn mean_pages(&self) -> f64 {
        if self.total_writes == 0 {
            0.0
        } else {
            self.total_pages as f64 / self.total_writes as f64
        }
    }

    /// Fraction of writes that were exactly one page (Figure 8 commentary).
    pub fn frac_single_page(&self) -> f64 {
        if self.total_writes == 0 {
            return 0.0;
        }
        self.counts.first().copied().unwrap_or(0) as f64 / self.total_writes as f64
    }

    /// Fraction of writes strictly larger than `pages`.
    pub fn frac_larger_than(&self, pages: u64) -> f64 {
        if self.total_writes == 0 {
            return 0.0;
        }
        let below: u64 = SIZE_EDGES
            .iter()
            .enumerate()
            .filter(|(_, &e)| e <= pages)
            .map(|(i, _)| self.counts[i])
            .sum();
        (self.total_writes - below) as f64 / self.total_writes as f64
    }

    /// CDF points `(bucket_edge_pages, cumulative_fraction_of_writes)`;
    /// the final point uses `u64::MAX` as an "anything larger" edge.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            let edge = SIZE_EDGES.get(i).copied().unwrap_or(u64::MAX);
            let frac = if self.total_writes == 0 {
                0.0
            } else {
                cum as f64 / self.total_writes as f64
            };
            out.push((edge, frac));
        }
        out
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &SizeHistogram) {
        if self.counts.is_empty() {
            self.counts = vec![0; SIZE_EDGES.len() + 1];
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total_writes += other.total_writes;
        self.total_pages += other.total_pages;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.variance() - 4.0).abs() < 1e-12);
        assert!((w.stddev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
        w.push(3.0);
        assert_eq!(w.mean(), 3.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let mut all = Welford::new();
        let mut a = Welford::new();
        let mut b = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            all.push(x);
            if i % 2 == 0 {
                a.push(x)
            } else {
                b.push(x)
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
    }

    #[test]
    fn latency_percentiles_are_exact() {
        let mut l = LatencyStats::new();
        for i in 1..=100u64 {
            l.push(SimDuration::from_nanos(i));
        }
        assert_eq!(l.percentile(50.0), SimDuration::from_nanos(50));
        assert_eq!(l.percentile(99.0), SimDuration::from_nanos(99));
        assert_eq!(l.percentile(100.0), SimDuration::from_nanos(100));
        assert_eq!(l.percentile(0.0), SimDuration::from_nanos(1));
        assert_eq!(l.max(), SimDuration::from_nanos(100));
        assert_eq!(l.mean(), SimDuration::from_nanos(51)); // 50.5 rounded
    }

    #[test]
    fn latency_empty_is_zero() {
        let mut l = LatencyStats::new();
        assert_eq!(l.percentile(50.0), SimDuration::ZERO);
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.count(), 0);
    }

    #[test]
    fn latency_merge_combines_samples() {
        let mut a = LatencyStats::new();
        let mut b = LatencyStats::new();
        a.push(SimDuration::from_nanos(10));
        b.push(SimDuration::from_nanos(30));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.mean(), SimDuration::from_nanos(20));
        assert_eq!(a.percentile(100.0), SimDuration::from_nanos(30));
    }

    #[test]
    fn latency_stats_emit_into_registry() {
        use fc_obs::StatSource;
        let mut l = LatencyStats::new();
        for i in 1..=100u64 {
            l.push(SimDuration::from_nanos(i * 10));
        }
        let mut reg = fc_obs::Registry::new();
        l.emit(&mut reg);
        l.emit_with_prefix("server.response", &mut reg);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("latency.count"), Some(100));
        assert_eq!(snap.gauge("latency.p99_ns"), Some(990.0));
        assert_eq!(snap.gauge("server.response.max_ns"), Some(1000.0));
        assert_eq!(snap.gauge("server.response.mean_ns"), Some(505.0));
    }

    #[test]
    fn histogram_buckets_match_paper_edges() {
        let mut h = SizeHistogram::new();
        for &k in &[1u64, 1, 2, 3, 4, 8, 9, 64, 65, 200] {
            h.record(k);
        }
        assert_eq!(h.writes(), 10);
        assert_eq!(h.pages(), 1 + 1 + 2 + 3 + 4 + 8 + 9 + 64 + 65 + 200);
        // 2 single-page writes out of 10.
        assert!((h.frac_single_page() - 0.2).abs() < 1e-12);
        // Writes > 8 pages: 9, 64, 65, 200 → 0.4.
        assert!((h.frac_larger_than(8) - 0.4).abs() < 1e-12);
        let cdf = h.cdf();
        assert_eq!(cdf.len(), SIZE_EDGES.len() + 1);
        assert_eq!(cdf[0], (1, 0.2));
        let last = cdf.last().unwrap();
        assert_eq!(last.0, u64::MAX);
        assert!((last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_ignores_zero_length_writes() {
        let mut h = SizeHistogram::new();
        h.record(0);
        assert_eq!(h.writes(), 0);
        assert_eq!(h.frac_single_page(), 0.0);
        assert_eq!(h.frac_larger_than(4), 0.0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = SizeHistogram::new();
        let mut b = SizeHistogram::new();
        a.record(1);
        b.record(16);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.writes(), 3);
        assert!((a.frac_single_page() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut h = SizeHistogram::new();
        for k in 1..=70u64 {
            h.record(k);
        }
        let cdf = h.cdf();
        for w in cdf.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
