//! FIFO resource timelines for virtual-clock trace replay.
//!
//! Most FlashCoop experiments are open-loop trace replays: requests arrive at
//! trace timestamps and contend for two serial resources — the SSD channel and
//! the replication NIC. Rather than running a full event-driven simulation, we
//! model each resource as a *timeline*: the instant it next becomes free. A
//! request arriving at `t` with service demand `s` starts at
//! `max(t, free_at)`, finishes at `start + s`, and its queueing delay is
//! `start - t`. This is exactly an M/G/1-style FIFO queue replay and is the
//! standard technique in storage-trace simulators (DiskSim uses the same idea
//! per component).
//!
//! [`MultiTimeline`] generalises this to `k` identical servers (e.g. the
//! planes of a flash die, which can program pages concurrently).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Outcome of acquiring a resource: when service began and ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// Instant service actually started (>= request arrival).
    pub start: SimTime,
    /// Instant service completed.
    pub end: SimTime,
}

impl Grant {
    /// Queueing delay experienced before service, given the arrival instant.
    pub fn wait_since(&self, arrival: SimTime) -> SimDuration {
        self.start.saturating_since(arrival)
    }

    /// Total latency (queueing + service) since the arrival instant.
    pub fn latency_since(&self, arrival: SimTime) -> SimDuration {
        self.end.saturating_since(arrival)
    }
}

/// A single FIFO server: busy until `free_at`.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Timeline {
    free_at: SimTime,
    busy: SimDuration,
}

impl Timeline {
    /// A timeline that is free immediately.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Instant the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total busy time accumulated so far (for utilisation reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy
    }

    /// Utilisation over `[0, horizon]`: busy time / horizon, clamped to 1.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == SimTime::ZERO {
            return 0.0;
        }
        (self.busy.as_nanos() as f64 / horizon.as_nanos() as f64).min(1.0)
    }

    /// Occupy the resource for `service`, starting no earlier than `arrival`.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let start = arrival.max(self.free_at);
        let end = start + service;
        self.free_at = end;
        self.busy += service;
        Grant { start, end }
    }

    /// Occupy the resource in the *background*: work is appended to the queue
    /// but never starts before `not_before` (used for asynchronous flushes
    /// that should not preempt an idle period retroactively).
    pub fn acquire_background(&mut self, not_before: SimTime, service: SimDuration) -> Grant {
        self.acquire(not_before, service)
    }

    /// True if the resource is idle at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        self.free_at <= now
    }

    /// Reset to the initial, idle-at-zero state.
    pub fn reset(&mut self) {
        *self = Timeline::default();
    }
}

/// `k` identical FIFO servers; each acquisition takes the earliest-free server.
///
/// Used to model plane-level parallelism: a k-page sequential write striped
/// over `k` planes programs concurrently, while k random single-page writes to
/// the same plane serialise.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiTimeline {
    servers: Vec<Timeline>,
}

impl MultiTimeline {
    /// Create `k` idle servers. `k` is clamped to at least 1.
    pub fn new(k: usize) -> Self {
        MultiTimeline {
            servers: vec![Timeline::default(); k.max(1)],
        }
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers.len()
    }

    /// Acquire the earliest-free server.
    pub fn acquire(&mut self, arrival: SimTime, service: SimDuration) -> Grant {
        let idx = self.earliest_free();
        self.servers[idx].acquire(arrival, service)
    }

    /// Acquire a *specific* server (e.g. the plane that owns a physical page).
    pub fn acquire_server(
        &mut self,
        server: usize,
        arrival: SimTime,
        service: SimDuration,
    ) -> Grant {
        let idx = server % self.servers.len();
        self.servers[idx].acquire(arrival, service)
    }

    /// Instant at which all servers are free.
    pub fn all_free_at(&self) -> SimTime {
        self.servers
            .iter()
            .map(|s| s.free_at())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Instant at which the least-loaded server is free.
    pub fn earliest_free_at(&self) -> SimTime {
        self.servers
            .iter()
            .map(|s| s.free_at())
            .fold(SimTime::MAX, SimTime::min)
    }

    /// Mean utilisation across servers over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if self.servers.is_empty() {
            return 0.0;
        }
        self.servers
            .iter()
            .map(|s| s.utilization(horizon))
            .sum::<f64>()
            / self.servers.len() as f64
    }

    /// Reset every server to idle-at-zero.
    pub fn reset(&mut self) {
        for s in &mut self.servers {
            s.reset();
        }
    }

    fn earliest_free(&self) -> usize {
        let mut best = 0;
        let mut best_t = self.servers[0].free_at();
        for (i, s) in self.servers.iter().enumerate().skip(1) {
            if s.free_at() < best_t {
                best = i;
                best_t = s.free_at();
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const US: fn(u64) -> SimDuration = SimDuration::from_micros;
    const AT: fn(u64) -> SimTime = SimTime::from_micros;

    #[test]
    fn idle_resource_serves_immediately() {
        let mut t = Timeline::new();
        let g = t.acquire(AT(10), US(5));
        assert_eq!(g.start, AT(10));
        assert_eq!(g.end, AT(15));
        assert_eq!(g.wait_since(AT(10)), SimDuration::ZERO);
        assert_eq!(g.latency_since(AT(10)), US(5));
    }

    #[test]
    fn busy_resource_queues_fifo() {
        let mut t = Timeline::new();
        t.acquire(AT(0), US(100));
        let g = t.acquire(AT(10), US(5));
        assert_eq!(g.start, AT(100));
        assert_eq!(g.end, AT(105));
        assert_eq!(g.wait_since(AT(10)), US(90));
    }

    #[test]
    fn busy_time_and_utilization_accumulate() {
        let mut t = Timeline::new();
        t.acquire(AT(0), US(30));
        t.acquire(AT(50), US(20));
        assert_eq!(t.busy_time(), US(50));
        let u = t.utilization(AT(100));
        assert!((u - 0.5).abs() < 1e-9);
        assert_eq!(t.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn utilization_clamps_to_one() {
        let mut t = Timeline::new();
        t.acquire(AT(0), US(500));
        assert_eq!(t.utilization(AT(100)), 1.0);
    }

    #[test]
    fn multi_timeline_parallelises_independent_work() {
        let mut m = MultiTimeline::new(4);
        // Four units of work arriving together run fully in parallel.
        let ends: Vec<SimTime> = (0..4).map(|_| m.acquire(AT(0), US(10)).end).collect();
        assert!(ends.iter().all(|&e| e == AT(10)));
        // A fifth queues behind the earliest-free server.
        let g = m.acquire(AT(0), US(10));
        assert_eq!(g.start, AT(10));
        assert_eq!(g.end, AT(20));
    }

    #[test]
    fn multi_timeline_specific_server_serialises() {
        let mut m = MultiTimeline::new(4);
        let g1 = m.acquire_server(2, AT(0), US(10));
        let g2 = m.acquire_server(2, AT(0), US(10));
        assert_eq!(g1.end, AT(10));
        assert_eq!(g2.start, AT(10));
        // Server index wraps modulo the server count.
        let g3 = m.acquire_server(6, AT(0), US(10));
        assert_eq!(g3.start, AT(20));
    }

    #[test]
    fn multi_timeline_free_at_bounds() {
        let mut m = MultiTimeline::new(2);
        m.acquire_server(0, AT(0), US(30));
        assert_eq!(m.earliest_free_at(), SimTime::ZERO);
        assert_eq!(m.all_free_at(), AT(30));
    }

    #[test]
    fn zero_servers_clamps_to_one() {
        let m = MultiTimeline::new(0);
        assert_eq!(m.servers(), 1);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut t = Timeline::new();
        t.acquire(AT(0), US(10));
        t.reset();
        assert!(t.is_idle_at(SimTime::ZERO));
        assert_eq!(t.busy_time(), SimDuration::ZERO);

        let mut m = MultiTimeline::new(2);
        m.acquire(AT(0), US(10));
        m.reset();
        assert_eq!(m.all_free_at(), SimTime::ZERO);
    }
}
