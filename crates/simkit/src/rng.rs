//! Seeded, deterministic randomness.
//!
//! Every stochastic component in the reproduction (trace synthesis, device
//! preconditioning, failure injection) draws from a [`DetRng`] constructed
//! from an explicit seed, so experiment runs are bit-for-bit reproducible.
//!
//! The Zipf sampler implements the classic Gray et al. "quick zipf"
//! incremental method used by database benchmark generators: O(1) per sample
//! after O(1) setup, with the exact skew parameter θ the FlashCoop workload
//! model needs for the "many popular sectors are updated frequently"
//! behaviour described in the paper's introduction.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG with the sampling helpers the simulators need.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Construct from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream; deterministic in (seed, label).
    pub fn fork(&mut self, label: u64) -> DetRng {
        // Mix the label into fresh state drawn from this stream so children
        // with different labels are decorrelated even if forked back-to-back.
        let base: u64 = self.inner.gen();
        DetRng::new(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f64>() < p
    }

    /// Exponential variate with the given mean (inter-arrival synthesis).
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; (1 - u) avoids ln(0).
        let u: f64 = self.inner.gen();
        -mean * (1.0 - u).ln()
    }

    /// Geometric-like run length with the given mean, at least 1.
    pub fn run_length(&mut self, mean: f64) -> u64 {
        (self.exp(mean.max(1.0) - 1.0).round() as u64).saturating_add(1)
    }

    /// Raw access for APIs that take `impl Rng`.
    pub fn raw(&mut self) -> &mut SmallRng {
        &mut self.inner
    }
}

/// Incremental Zipf(θ) sampler over `{0, 1, …, n-1}` (rank 0 is hottest).
///
/// θ = 0 degenerates to uniform; θ → 1 concentrates mass on low ranks. The
/// implementation follows Gray et al., "Quickly Generating Billion-Record
/// Synthetic Databases" (SIGMOD '94).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    zeta_n: f64,
    eta: f64,
    theta: f64,
}

impl Zipf {
    /// Build a sampler over `n` items with skew `theta` in `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        let theta = theta.clamp(0.0, 0.999_999);
        let zeta_n = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zeta_n);
        let _ = zeta2;
        Zipf {
            n,
            alpha,
            zeta_n,
            eta,
            theta,
        }
    }

    /// Domain size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draw a rank in `[0, n)`; rank 0 is the most popular item.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zeta_n;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5_f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.n - 1)
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n, Euler–Maclaurin style approximation for large n;
        // the generator only needs a few-percent-accurate normaliser.
        const EXACT_LIMIT: u64 = 10_000;
        if n <= EXACT_LIMIT {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=EXACT_LIMIT)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // ∫_{EXACT_LIMIT}^{n} x^{-θ} dx
            let a = EXACT_LIMIT as f64;
            let b = n as f64;
            let tail = if (theta - 1.0).abs() < 1e-12 {
                (b / a).ln()
            } else {
                (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
            };
            head + tail
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.below(1_000_000), b.below(1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.below(u64::MAX)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.below(u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut parent1 = DetRng::new(7);
        let mut parent2 = DetRng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.below(1 << 40), c2.below(1 << 40));
        }
        let mut parent3 = DetRng::new(7);
        let mut other = parent3.fork(4);
        let a: Vec<u64> = (0..16)
            .map(|_| DetRng::new(7).fork(3).below(1 << 40))
            .collect();
        let b: Vec<u64> = (0..16).map(|_| other.below(1 << 40)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_in_range_and_chance_respects_extremes() {
        let mut r = DetRng::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
        assert!(!r.chance(-1.0)); // clamped
    }

    #[test]
    fn exp_has_roughly_the_requested_mean() {
        let mut r = DetRng::new(11);
        let n = 50_000;
        let mean = 133.5;
        let total: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = total / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.05,
            "observed {observed} vs {mean}"
        );
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-5.0), 0.0);
    }

    #[test]
    fn run_length_is_at_least_one() {
        let mut r = DetRng::new(13);
        for _ in 0..1000 {
            assert!(r.run_length(4.0) >= 1);
        }
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(1000, 0.0);
        let mut r = DetRng::new(17);
        let mut lows = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut r) < 500 {
                lows += 1;
            }
        }
        let frac = lows as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "frac {frac}");
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = Zipf::new(10_000, 0.9);
        let mut r = DetRng::new(19);
        let n = 20_000;
        let mut top_decile = 0;
        for _ in 0..n {
            if z.sample(&mut r) < 1000 {
                top_decile += 1;
            }
        }
        let frac = top_decile as f64 / n as f64;
        assert!(frac > 0.6, "top 10% of ranks got {frac} of accesses");
    }

    #[test]
    fn zipf_samples_stay_in_domain() {
        for &n in &[1u64, 2, 3, 100, 1_000_000] {
            let z = Zipf::new(n, 0.8);
            let mut r = DetRng::new(23);
            for _ in 0..500 {
                assert!(z.sample(&mut r) < n);
            }
        }
    }

    #[test]
    fn zeta_approximation_close_to_exact() {
        // Compare the piecewise approximation against brute force at a size
        // just over the exact cutoff.
        let n = 20_000u64;
        let theta = 0.75;
        let exact: f64 = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum();
        let approx = Zipf::new(n, theta).zeta_n;
        assert!(
            ((exact - approx) / exact).abs() < 0.01,
            "exact {exact} approx {approx}"
        );
    }
}
