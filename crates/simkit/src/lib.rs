//! # fc-simkit
//!
//! Deterministic discrete-event simulation substrate used by the FlashCoop
//! reproduction (`fc-ssd`, `fc-trace`, `flashcoop`, `fc-bench`).
//!
//! The crate provides:
//!
//! * [`time`] — nanosecond-resolution simulated time ([`SimTime`],
//!   [`SimDuration`]) with saturating arithmetic and human-readable display.
//! * [`event`] — a stable, FIFO-tie-breaking event queue ([`event::EventQueue`])
//!   for fully event-driven simulations.
//! * [`resource`] — lightweight FIFO resource timelines ([`resource::Timeline`],
//!   [`resource::MultiTimeline`]) for virtual-clock trace replay, which is how
//!   most FlashCoop experiments are driven.
//! * [`rng`] — seeded deterministic randomness ([`rng::DetRng`]) including the
//!   Zipf sampler used for temporal-locality synthesis.
//! * [`net`] — a latency/bandwidth link model ([`net::LinkModel`]) standing in
//!   for the paper's 10 Gbit Ethernet replication path.
//! * [`stats`] — streaming mean/variance, sample percentiles, and power-of-two
//!   histograms shared by the metric collectors.
//!
//! Everything is `std`-only and deterministic given a seed: replaying the same
//! experiment twice produces bit-identical results.

pub mod event;
pub mod net;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use net::LinkModel;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
