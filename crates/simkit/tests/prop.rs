//! Property-based tests for the simulation substrate.

use fc_simkit::event::EventQueue;
use fc_simkit::resource::Timeline;
use fc_simkit::rng::Zipf;
use fc_simkit::stats::{LatencyStats, SizeHistogram, Welford};
use fc_simkit::{DetRng, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events pop in non-decreasing time order, FIFO within equal times.
    #[test]
    fn event_queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((at, idx)) = q.pop() {
            if let Some((lt, lidx)) = last {
                prop_assert!(at >= lt);
                if at == lt {
                    // FIFO tie-break: indices of equal-time events ascend.
                    prop_assert!(
                        times[idx] != times[lidx] || idx > lidx,
                        "FIFO violated: {lidx} then {idx}"
                    );
                }
            }
            last = Some((at, idx));
        }
    }

    /// A FIFO timeline's grants never overlap and never start early.
    #[test]
    fn timeline_grants_never_overlap(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100)
    ) {
        let mut t = Timeline::new();
        let mut prev_end = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        // Arrivals must be offered in time order for FIFO semantics.
        let mut jobs = jobs;
        jobs.sort_by_key(|j| j.0);
        for (at, dur) in jobs {
            let arrival = SimTime::from_nanos(at);
            let service = SimDuration::from_nanos(dur);
            let g = t.acquire(arrival, service);
            prop_assert!(g.start >= arrival);
            prop_assert!(g.start >= prev_end);
            prop_assert_eq!(g.end, g.start + service);
            prev_end = g.end;
            total += service;
        }
        prop_assert_eq!(t.busy_time(), total);
        prop_assert_eq!(t.free_at(), prev_end);
    }

    /// Welford matches the naive two-pass computation.
    #[test]
    fn welford_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((w.variance() - var).abs() < 1e-4 * var.abs().max(1.0));
    }

    /// Percentiles are order statistics: p0 = min, p100 = max, monotone.
    #[test]
    fn percentiles_are_monotone(ns in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut l = LatencyStats::new();
        for &n in &ns {
            l.push(SimDuration::from_nanos(n));
        }
        let mut prev = SimDuration::ZERO;
        for p in [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
            let v = l.percentile(p);
            prop_assert!(v >= prev, "percentile({p}) regressed");
            prev = v;
        }
        prop_assert_eq!(l.percentile(100.0), SimDuration::from_nanos(*ns.iter().max().unwrap()));
        prop_assert_eq!(l.percentile(0.0), SimDuration::from_nanos(*ns.iter().min().unwrap()));
    }

    /// Histogram CDF is monotone and ends at 1; counts conserve.
    #[test]
    fn histogram_cdf_monotone(sizes in prop::collection::vec(1u64..200, 1..300)) {
        let mut h = SizeHistogram::new();
        for &s in &sizes {
            h.record(s);
        }
        prop_assert_eq!(h.writes(), sizes.len() as u64);
        prop_assert_eq!(h.pages(), sizes.iter().sum::<u64>());
        let cdf = h.cdf();
        let mut prev = 0.0;
        for &(_, f) in &cdf {
            prop_assert!(f >= prev - 1e-12);
            prev = f;
        }
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    /// Zipf samples stay in-domain for any (n, theta).
    #[test]
    fn zipf_in_domain(n in 1u64..100_000, theta in 0.0f64..0.999, seed in 0u64..1_000) {
        let z = Zipf::new(n, theta);
        let mut rng = DetRng::new(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Saturating time arithmetic never panics and orders sensibly.
    #[test]
    fn time_arithmetic_total(a in 0u64..u64::MAX, b in 0u64..u64::MAX) {
        let ta = SimTime::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = ta + db;
        prop_assert!(sum >= ta);
        prop_assert_eq!(sum.saturating_since(ta), if a.checked_add(b).is_some() {
            db
        } else {
            SimDuration::from_nanos(u64::MAX - a)
        });
    }
}
